#include "model/aggregation.hpp"

#include <gtest/gtest.h>

#include <numeric>

namespace dchag::model {
namespace {

namespace ops = tensor::ops;
using autograd::Variable;
using tensor::Rng;
using tensor::Shape;
using tensor::Tensor;

// ----- TreePlan properties ----------------------------------------------------

struct PlanParam {
  Index channels;
  Index max_width;
};

class TreePlanSweep : public ::testing::TestWithParam<PlanParam> {};

TEST_P(TreePlanSweep, EveryLevelPartitionsItsInputs) {
  const auto [c, w] = GetParam();
  TreePlan plan = plan_tree(c, w);
  Index tokens = c;
  for (const auto& level : plan.level_widths) {
    const Index covered = std::accumulate(level.begin(), level.end(),
                                          Index{0});
    ASSERT_EQ(covered, tokens) << "channels=" << c << " width=" << w;
    for (Index width : level) {
      ASSERT_GE(width, 1);
      ASSERT_LE(width, w == 1 ? 1 : w);
    }
    tokens = static_cast<Index>(level.size());
  }
  EXPECT_EQ(tokens, 1);  // tree always reduces to one representation
}

TEST_P(TreePlanSweep, MaxWidthRespected) {
  const auto [c, w] = GetParam();
  TreePlan plan = plan_tree(c, w);
  EXPECT_LE(plan.max_width(), std::max<Index>(w, 1));
}

INSTANTIATE_TEST_SUITE_P(
    ChannelsAndWidths, TreePlanSweep,
    ::testing::Values(PlanParam{1, 2}, PlanParam{2, 2}, PlanParam{8, 2},
                      PlanParam{8, 4}, PlanParam{8, 8}, PlanParam{7, 3},
                      PlanParam{500, 63}, PlanParam{512, 128},
                      PlanParam{1024, 32}, PlanParam{100, 100}),
    [](const ::testing::TestParamInfo<PlanParam>& info) {
      return "C" + std::to_string(info.param.channels) + "W" +
             std::to_string(info.param.max_width);
    });

TEST(TreePlan, PaperFig3Configurations) {
  // Paper Fig. 3: eight channels with one, two, and three levels.
  EXPECT_EQ(plan_tree(8, 8).num_levels(), 1);   // baseline: single layer
  EXPECT_EQ(plan_tree(8, 4).num_levels(), 2);   // two-layer hierarchy
  EXPECT_EQ(plan_tree(8, 2).num_levels(), 3);   // three-layer hierarchy
}

TEST(TreePlan, PaperTreeNamingFig9) {
  // Paper Fig. 9 caption: 512 channels on two GPUs -> 256 local channels.
  // Tree2 = two first-level units of <=128 channels; Tree8 = eight units
  // of <=32 channels.
  EXPECT_EQ(tree_units_to_width(256, 2), 128);
  EXPECT_EQ(tree_units_to_width(256, 8), 32);
  TreePlan tree2 = plan_tree(256, 128);
  ASSERT_EQ(tree2.num_levels(), 2);
  EXPECT_EQ(tree2.level_widths[0].size(), 2u);
  TreePlan tree8 = plan_tree(256, 32);
  EXPECT_EQ(tree8.level_widths[0].size(), 8u);
}

TEST(TreePlan, Tree0IsSingleUnit) {
  EXPECT_EQ(tree_units_to_width(256, 0), 256);
  EXPECT_EQ(tree_units_to_width(256, 1), 256);
  TreePlan p = plan_tree(256, 256);
  EXPECT_EQ(p.num_levels(), 1);
  EXPECT_EQ(p.num_units(), 1);
}

TEST(TreePlan, UnitsExceedingChannelsThrows) {
  EXPECT_THROW(tree_units_to_width(4, 8), Error);
}

TEST(TreePlan, DeeperTreesHaveMoreUnits) {
  // Paper §3.2: more layers -> more parameters (the -L/-C tradeoff).
  EXPECT_LT(plan_tree(256, 256).num_units(), plan_tree(256, 128).num_units());
  EXPECT_LT(plan_tree(256, 128).num_units(), plan_tree(256, 32).num_units());
}

// ----- AggregationTree module -------------------------------------------------

TEST(AggregationTree, ForwardShapeAllKinds) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(1);
  Tensor tokens = rng.normal_tensor(Shape{2, 3, 8, cfg.embed_dim});
  for (AggLayerKind kind :
       {AggLayerKind::kCrossAttention, AggLayerKind::kLinear}) {
    for (Index units : {1, 2, 4}) {
      auto tree = AggregationTree::with_units(cfg, kind, 8, units, rng);
      Variable out = tree->forward(Variable::input(tokens));
      EXPECT_EQ(out.shape(), (Shape{2, 3, cfg.embed_dim}))
          << to_string(kind) << " units=" << units;
    }
  }
}

TEST(AggregationTree, SingleUnitEqualsPlainAggregator) {
  // A Tree0 (one unit over all channels) must equal the standalone unit
  // with identical seeding.
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng_tree(7);
  auto tree = AggregationTree::with_units(cfg, AggLayerKind::kCrossAttention,
                                          4, 1, rng_tree, "tree");
  Rng rng_unit(7);
  CrossAttentionAggregator unit(cfg.embed_dim, cfg.num_heads, 4,
                                cfg.query_mode, rng_unit, "tree.l0u0");
  Tensor tokens = Rng(3).normal_tensor(Shape{1, 2, 4, cfg.embed_dim});
  Tensor a = tree->forward(Variable::input(tokens)).value();
  Tensor b = unit.forward(Variable::input(tokens)).value();
  EXPECT_LT(ops::max_abs_diff(a, b), 1e-6f);
}

TEST(AggregationTree, OutputDependsOnEveryChannel) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(4);
  auto tree =
      AggregationTree::with_units(cfg, AggLayerKind::kLinear, 8, 4, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 8, cfg.embed_dim});
  Tensor base = tree->forward(Variable::input(tokens)).value();
  for (Index c = 0; c < 8; ++c) {
    Tensor mod = tokens.clone();
    mod.set({0, 0, c, 0}, mod.at({0, 0, c, 0}) + 2.0f);
    Tensor out = tree->forward(Variable::input(mod)).value();
    EXPECT_GT(ops::max_abs_diff(base, out), 1e-6f) << "channel " << c;
  }
}

TEST(AggregationTree, GradientsReachAllUnits) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(5);
  auto tree = AggregationTree::with_units(cfg, AggLayerKind::kCrossAttention,
                                          8, 2, rng);
  Tensor tokens = rng.normal_tensor(Shape{1, 2, 8, cfg.embed_dim});
  autograd::sum_all(tree->forward(Variable::input(tokens))).backward();
  for (const auto& p : tree->parameters())
    EXPECT_TRUE(p.has_grad()) << p.name();
}

TEST(AggregationTree, RejectsWidthMismatch) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(6);
  auto tree =
      AggregationTree::with_units(cfg, AggLayerKind::kLinear, 8, 2, rng);
  EXPECT_THROW(
      tree->forward(Variable::input(Tensor(Shape{1, 2, 7, cfg.embed_dim}))),
      Error);
}

TEST(AggregationTree, LinearTreeCheaperThanCrossTree) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(8);
  auto ct = AggregationTree::with_units(cfg, AggLayerKind::kCrossAttention,
                                        16, 4, rng);
  auto lt =
      AggregationTree::with_units(cfg, AggLayerKind::kLinear, 16, 4, rng);
  EXPECT_LT(lt->num_parameters(), ct->num_parameters());
}

}  // namespace
}  // namespace dchag::model
