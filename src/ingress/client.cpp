#include "ingress/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "tensor/check.hpp"

namespace dchag::ingress {

Client::Client(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DCHAG_CHECK(fd_ >= 0, "socket() failed: " << std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    DCHAG_FAIL("connect(127.0.0.1:" << port
                                    << ") failed: " << std::strerror(err));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(std::exchange(other.next_id_, 1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = std::exchange(other.next_id_, 1);
  }
  return *this;
}

Frame Client::round_trip(MsgType type,
                         const std::vector<std::uint8_t>& payload) {
  DCHAG_CHECK(fd_ >= 0, "Client used after move");
  DCHAG_CHECK(write_frame(fd_, type, payload),
              "ingress connection closed while sending");
  std::optional<Frame> reply = read_frame(fd_);
  DCHAG_CHECK(reply.has_value(),
              "ingress connection closed before the response arrived");
  return std::move(*reply);
}

Tensor Client::infer(const Tensor& images, const std::vector<Index>& channels,
                     float lead_time) {
  InferRequest req;
  req.id = next_id_++;
  req.lead_time = lead_time;
  req.channels = channels;
  req.images = images;
  const Frame reply = round_trip(MsgType::kInfer, encode_infer(req));
  if (reply.type == MsgType::kError) {
    const WireError err =
        decode_error(reply.payload.data(), reply.payload.size());
    throw IngressError(err.code, err.message);
  }
  DCHAG_CHECK(reply.type == MsgType::kResult,
              "unexpected reply frame type "
                  << static_cast<int>(reply.type) << " to kInfer");
  InferResult result =
      decode_result(reply.payload.data(), reply.payload.size());
  DCHAG_CHECK(result.id == req.id, "response id " << result.id
                                                  << " does not match request "
                                                  << req.id);
  return std::move(result.pred);
}

std::string Client::metrics_text() {
  const Frame reply = round_trip(MsgType::kMetricsQuery, {});
  DCHAG_CHECK(reply.type == MsgType::kMetricsText,
              "unexpected reply frame type "
                  << static_cast<int>(reply.type) << " to kMetricsQuery");
  return std::string(reply.payload.begin(), reply.payload.end());
}

bool Client::healthz() {
  const Frame reply = round_trip(MsgType::kHealthQuery, {});
  return reply.type == MsgType::kHealthOk;
}

}  // namespace dchag::ingress
