#include "model/config.hpp"

#include <gtest/gtest.h>

#include "model/aggregation.hpp"
#include "model/foundation.hpp"
#include "model/tokenizer.hpp"
#include "model/vit.hpp"

namespace dchag::model {
namespace {

TEST(ModelConfig, PresetsMatchPaperDims) {
  // §6.1: 7B (4096 embed, 32 layers, 32 heads), 15B (6144), 26B (8192).
  ModelConfig c7 = ModelConfig::preset("7B");
  EXPECT_EQ(c7.embed_dim, 4096);
  EXPECT_EQ(c7.num_layers, 32);
  EXPECT_EQ(c7.num_heads, 32);
  EXPECT_EQ(ModelConfig::preset("15B").embed_dim, 6144);
  EXPECT_EQ(ModelConfig::preset("26B").embed_dim, 8192);
}

TEST(ModelConfig, PresetTransformerParamCountsNearNominal) {
  // Transformer-block parameters should be within 15% of the nominal name.
  const std::pair<const char*, double> cases[] = {
      {"1.7B", 1.7e9}, {"3B", 3e9}, {"7B", 7e9}, {"15B", 15e9}, {"26B", 26e9}};
  for (const auto& [name, nominal] : cases) {
    const auto params = static_cast<double>(
        ModelConfig::preset(name).transformer_params());
    EXPECT_GT(params, nominal * 0.8) << name;
    EXPECT_LT(params, nominal * 1.15) << name;
  }
}

TEST(ModelConfig, UnknownPresetThrows) {
  EXPECT_THROW(ModelConfig::preset("9000B"), Error);
}

TEST(ModelConfig, SeqLenAndValidation) {
  ModelConfig c = ModelConfig::tiny();
  EXPECT_EQ(c.seq_len(), 16);  // 16x16 image, patch 4
  c.image_h = 15;
  EXPECT_THROW(c.validate(), Error);
  c = ModelConfig::tiny();
  c.num_heads = 5;  // 32 % 5 != 0
  EXPECT_THROW(c.validate(), Error);
}

// ----- analytic parameter formulas vs executable modules ---------------------

TEST(ParamFormulas, TokenizerMatchesModule) {
  ModelConfig cfg = ModelConfig::tiny();
  tensor::Rng rng(1);
  for (Index c : {1, 3, 8}) {
    PatchTokenizer tok(cfg, c, rng);
    EXPECT_EQ(tok.num_parameters(), cfg.tokenizer_params(c))
        << "channels=" << c;
  }
}

TEST(ParamFormulas, CrossAttentionAggregatorMatches) {
  ModelConfig cfg = ModelConfig::tiny();
  tensor::Rng rng(2);
  CrossAttentionAggregator agg(cfg.embed_dim, cfg.num_heads, 8,
                               QueryMode::kChannelTokens, rng);
  EXPECT_EQ(agg.num_parameters(),
            cfg.aggregator_params(AggLayerKind::kCrossAttention, 8));

  cfg.query_mode = QueryMode::kLearnedQuery;
  CrossAttentionAggregator agg2(cfg.embed_dim, cfg.num_heads, 8,
                                QueryMode::kLearnedQuery, rng);
  EXPECT_EQ(agg2.num_parameters(),
            cfg.aggregator_params(AggLayerKind::kCrossAttention, 8));
}

TEST(ParamFormulas, LinearAggregatorMatchesAndIsSmaller) {
  ModelConfig cfg = ModelConfig::tiny();
  tensor::Rng rng(3);
  LinearAggregator agg(cfg.embed_dim, 8, rng);
  EXPECT_EQ(agg.num_parameters(),
            cfg.aggregator_params(AggLayerKind::kLinear, 8));
  // The -L unit must be cheaper than -C (paper's motivation for -L).
  EXPECT_LT(cfg.aggregator_params(AggLayerKind::kLinear, 8),
            cfg.aggregator_params(AggLayerKind::kCrossAttention, 8));
}

TEST(ParamFormulas, TransformerMatchesEncoder) {
  ModelConfig cfg = ModelConfig::tiny();
  tensor::Rng rng(4);
  ViTEncoder enc(cfg, rng);
  EXPECT_EQ(enc.num_parameters(), cfg.transformer_params());
}

TEST(ParamFormulas, TreeMatchesModule) {
  ModelConfig cfg = ModelConfig::tiny();
  tensor::Rng rng(5);
  for (Index units : {1, 2, 4}) {
    auto tree = AggregationTree::with_units(
        cfg, AggLayerKind::kCrossAttention, 8, units, rng);
    EXPECT_EQ(tree->num_parameters(),
              tree_params(cfg, AggLayerKind::kCrossAttention, tree->plan()))
        << "units=" << units;
  }
  auto ltree =
      AggregationTree::with_units(cfg, AggLayerKind::kLinear, 8, 4, rng);
  EXPECT_EQ(ltree->num_parameters(),
            tree_params(cfg, AggLayerKind::kLinear, ltree->plan()));
}

TEST(ParamFormulas, TokenizerGrowsLinearlyInChannels) {
  ModelConfig cfg = ModelConfig::preset("7B");
  const Index base = cfg.tokenizer_params(0);  // positional embedding only
  const Index c128 = cfg.tokenizer_params(128) - base;
  const Index c256 = cfg.tokenizer_params(256) - base;
  EXPECT_EQ(c256, 2 * c128);
}

}  // namespace
}  // namespace dchag::model
