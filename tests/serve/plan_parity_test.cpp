// The serving plan's end-to-end oracle: a planned Engine (frozen model,
// pre-packed GEMM panels, fused epilogues, arena-backed buffers) is
// bit-identical to the unplanned tape-free forward on every backend, for
// full-channel and subset requests, and after a checkpoint cold start.
// Steady-state requests allocate zero heap buffers; mutating a weight
// after the freeze fails loudly instead of serving stale panels.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "model/foundation.hpp"
#include "serve/engine.hpp"
#include "tensor/kernel_config.hpp"
#include "tensor/plan.hpp"
#include "train/checkpoint.hpp"

namespace dchag::serve {
namespace {

namespace ops = dchag::tensor::ops;
using dchag::autograd::NoGradGuard;
using dchag::autograd::StaleWeightPackError;
using dchag::autograd::Variable;
using dchag::model::ForecastModel;
using dchag::model::ModelConfig;
using dchag::tensor::KernelBackend;
using dchag::tensor::Rng;
using dchag::tensor::Shape;

ForecastModel make_model(Index channels, std::uint64_t seed) {
  ModelConfig cfg = ModelConfig::tiny();
  Rng rng(seed);
  auto fe = dchag::model::make_baseline_frontend(cfg, channels, rng);
  return ForecastModel(cfg, std::move(fe), channels, rng);
}

runtime::ContextPatch backend_patch(KernelBackend b) {
  return runtime::ContextPatch::with_kernels({b, 0});
}

TEST(PlanParity, PlannedMatchesUnplannedOnEveryBackend) {
  // Same seed -> bit-identical weights in both models.
  ForecastModel planned_model = make_model(4, 21);
  ForecastModel unplanned_model = make_model(4, 21);
  Engine planned(planned_model);
  EngineOptions off;
  off.plan = false;
  Engine unplanned(unplanned_model, std::nullopt, off);
  EXPECT_TRUE(planned_model.is_frozen());
  EXPECT_FALSE(unplanned_model.is_frozen());

  Tensor images = Rng(5).normal_tensor(Shape{2, 4, 16, 16});
  Tensor subset = ops::concat(
      std::vector<Tensor>{ops::slice(images, 1, 0, 1),
                          ops::slice(images, 1, 2, 1)},
      1);
  const std::vector<Index> subset_ids{0, 2};
  for (KernelBackend b : {KernelBackend::kNaive, KernelBackend::kBlocked,
                          KernelBackend::kParallel}) {
    runtime::Scope scope(backend_patch(b));
    EXPECT_EQ(ops::max_abs_diff(planned.run(images, {}, 1.5f),
                                unplanned.run(images, {}, 1.5f)),
              0.0f)
        << "full channels, backend " << to_string(b);
    EXPECT_EQ(ops::max_abs_diff(planned.run(subset, subset_ids, 1.5f),
                                unplanned.run(subset, subset_ids, 1.5f)),
              0.0f)
        << "channel subset, backend " << to_string(b);
  }
}

TEST(PlanParity, FrozenForwardIsBitIdenticalToGradModeForward) {
  ForecastModel model = make_model(3, 23);
  Tensor images = Rng(6).normal_tensor(Shape{1, 3, 16, 16});
  Tensor with_grad = model.predict(images, 2.0f).value();
  model.freeze_for_serving();
  Tensor frozen;
  {
    NoGradGuard no_grad;
    frozen = model.predict(images, 2.0f).value();
  }
  EXPECT_EQ(ops::max_abs_diff(with_grad, frozen), 0.0f);
}

TEST(PlanParity, CheckpointColdStartMatchesDonorModel) {
  // Donor weights -> checkpoint -> fresh differently-seeded model loads
  // and freezes. The planned forward must match the donor's bit-for-bit
  // (panels packed from the LOADED weights, not the factory seed's).
  const std::string path = std::string(::testing::TempDir()) +
                           "/plan_parity_cold_start.ckpt";
  ForecastModel donor = make_model(3, 31);
  train::save_module(path, donor);
  Engine donor_engine(donor);

  ForecastModel cold = make_model(3, 77);  // different seed
  cold.eval();
  train::load_module(path, cold);
  Engine cold_engine(cold);  // freezes AFTER the load

  Tensor images = Rng(7).normal_tensor(Shape{2, 3, 16, 16});
  EXPECT_EQ(ops::max_abs_diff(cold_engine.run(images, {}, 0.5f),
                              donor_engine.run(images, {}, 0.5f)),
            0.0f);
  std::remove(path.c_str());
}

TEST(PlanParity, MutatedWeightAfterFreezeFailsLoudly) {
  ForecastModel model = make_model(2, 41);
  model.freeze_for_serving();
  // Element 0 is always covered by the fingerprint, full or sampled.
  for (Variable& p : model.parameters()) {
    if (p.name().find(".weight") != std::string::npos) {
      p.mutable_value().data()[0] += 1.0f;
      break;
    }
  }
  NoGradGuard no_grad;
  Tensor images = Rng(8).normal_tensor(Shape{1, 2, 16, 16});
  EXPECT_THROW((void)model.predict(images, 1.0f), StaleWeightPackError);
}

TEST(PlanParity, TrainClearsTheFreezeAndReFreezeRepacks) {
  ForecastModel model = make_model(2, 43);
  model.freeze_for_serving();
  EXPECT_TRUE(model.is_frozen());
  model.train();
  EXPECT_FALSE(model.is_frozen());
  // Mutate a weight while unfrozen: legal, and the next freeze repacks.
  for (Variable& p : model.parameters()) {
    if (p.name().find(".weight") != std::string::npos) {
      p.mutable_value().data()[0] += 1.0f;
      break;
    }
  }
  model.freeze_for_serving();
  NoGradGuard no_grad;
  Tensor images = Rng(9).normal_tensor(Shape{1, 2, 16, 16});
  (void)model.predict(images, 1.0f);  // must not throw
}

TEST(PlanParity, SteadyStateRequestsAllocateZeroBuffers) {
  ForecastModel model = make_model(4, 51);
  Engine engine(model);
  Tensor images = Rng(10).normal_tensor(Shape{2, 4, 16, 16});
  Tensor subset = ops::slice(images, 1, 1, 2);
  const std::vector<Index> subset_ids{1, 2};
  // Warm-up: two rounds per lane (the second round re-pools the buffers
  // the first round's still-live results were holding).
  Tensor r_full, r_sub;
  for (int i = 0; i < 2; ++i) {
    r_full = engine.run(images, {}, 1.0f);
    r_sub = engine.run(subset, subset_ids, 1.0f);
  }
  const std::uint64_t before = tensor::plan::thread_buffer_allocations();
  r_full = engine.run(images, {}, 1.0f);
  r_sub = engine.run(subset, subset_ids, 1.0f);
  EXPECT_EQ(tensor::plan::thread_buffer_allocations() - before, 0u)
      << "steady-state serving forward touched the heap";
  const tensor::plan::Arena::Stats stats = engine.arena_stats();
  EXPECT_GT(stats.reused, 0u);
  EXPECT_GT(stats.fresh, 0u);  // the warm-up
}

TEST(PlanParity, UnplannedEngineKeepsCountingAllocations) {
  ForecastModel model = make_model(2, 53);
  EngineOptions off;
  off.plan = false;
  Engine engine(model, std::nullopt, off);
  Tensor images = Rng(11).normal_tensor(Shape{1, 2, 16, 16});
  (void)engine.run(images, {}, 1.0f);  // warm caches either way
  const std::uint64_t before = tensor::plan::thread_buffer_allocations();
  (void)engine.run(images, {}, 1.0f);
  EXPECT_GT(tensor::plan::thread_buffer_allocations() - before, 0u)
      << "the unplanned baseline should allocate per request";
  const tensor::plan::Arena::Stats stats = engine.arena_stats();
  EXPECT_EQ(stats.fresh + stats.reused, 0u);
}

}  // namespace
}  // namespace dchag::serve
