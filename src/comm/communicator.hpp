// In-process SPMD communication runtime.
//
// World spawns one std::thread per rank and hands each a Communicator bound
// to a shared GroupState. Collectives move real data between rank-private
// buffers through shared memory, with the same semantics (and, for kRing /
// kHierarchical, the same step structure) as NCCL/RCCL collectives on a
// GPU cluster. This is the executable substrate for every distributed
// algorithm in the library; the analytic hw::CommCostModel prices the same
// operations on Frontier's fabric for at-scale projections.
//
// Usage contract (as in MPI/NCCL): every rank of a communicator must call
// the same sequence of collectives with compatible sizes; collectives are
// rendezvous points and asymmetric call sequences deadlock.
#pragma once

#include <barrier>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <tuple>
#include <vector>

#include "comm/types.hpp"
#include "tensor/check.hpp"

namespace dchag::comm {

class FaultPlan;  // fault.hpp: deterministic delay/drop/jitter injection

namespace detail {

/// State shared by all ranks of one communicator group.
struct GroupState {
  GroupState(int size, Topology topo,
             std::shared_ptr<const FaultPlan> plan = nullptr);

  int size;
  Topology topology;
  /// Optional fault injection consulted by every collective (timing only,
  /// never data). Propagates into split() children.
  std::shared_ptr<const FaultPlan> fault_plan;

  // Pointer-exchange slots for the direct/ring/hierarchical algorithms.
  std::vector<const float*> send_slots;
  std::vector<float*> recv_slots;
  std::vector<std::int64_t> count_slots;
  std::barrier<> barrier;

  // split() rendezvous.
  std::mutex split_mu;
  std::vector<int> split_colors;
  std::vector<int> split_keys;
  std::map<int, std::shared_ptr<GroupState>> split_groups;
  std::map<int, std::vector<int>> split_members;  // color -> parent ranks

  // Point-to-point mailbox (synchronous rendezvous send).
  struct Parcel {
    const float* data = nullptr;
    std::int64_t count = 0;
    bool consumed = false;
  };
  std::mutex mail_mu;
  std::condition_variable mail_cv;
  std::map<std::tuple<int, int, int>, Parcel> mailbox;  // (src,dst,tag)
};

}  // namespace detail

/// Per-rank handle to a communicator group. Not copyable: a handle also
/// carries this rank's traffic ledger (stats()), which callers inspect to
/// verify communication properties (e.g. D-CHAG's communication-free
/// backward pass).
class Communicator {
 public:
  Communicator(std::shared_ptr<detail::GroupState> state, int rank)
      : state_(std::move(state)), rank_(rank) {}

  Communicator(const Communicator&) = delete;
  Communicator& operator=(const Communicator&) = delete;
  Communicator(Communicator&&) = default;
  Communicator& operator=(Communicator&&) = default;

  [[nodiscard]] int rank() const { return rank_; }
  [[nodiscard]] int size() const { return state_->size; }
  [[nodiscard]] const Topology& topology() const { return state_->topology; }

  /// Synchronisation point for all ranks in the group.
  void barrier();

  /// In-place sum/avg/max/min across ranks; every rank ends with the result.
  void all_reduce(std::span<float> data, ReduceOp op = ReduceOp::kSum,
                  Algorithm alg = Algorithm::kAuto);

  /// Gathers each rank's `send` into `recv` ordered by rank.
  /// recv.size() must equal send.size() * size().
  void all_gather(std::span<const float> send, std::span<float> recv,
                  Algorithm alg = Algorithm::kAuto);

  /// Reduces element-wise across ranks, scattering contiguous chunks:
  /// rank r receives chunk r. send.size() must equal recv.size() * size().
  void reduce_scatter(std::span<const float> send, std::span<float> recv,
                      ReduceOp op = ReduceOp::kSum,
                      Algorithm alg = Algorithm::kAuto);

  /// Copies root's `data` to every rank (in place).
  void broadcast(std::span<float> data, int root);

  /// Synchronous (rendezvous) point-to-point send/recv with message tags.
  void send(std::span<const float> data, int dst, int tag);
  void recv(std::span<float> data, int src, int tag);

  /// Collective: partitions ranks by `color` into child communicators.
  /// Ranks are ordered within the child group by (key, parent rank);
  /// key < 0 means "use parent rank order".
  [[nodiscard]] Communicator split(int color, int key = -1);

  [[nodiscard]] const CommStats& stats() const { return stats_; }
  void reset_stats() { stats_ = CommStats{}; }

 private:
  /// Sleeps per the group's FaultPlan (if any) before/after a collective's
  /// data movement. No-ops without a plan; never touches payloads.
  void inject_entry_faults(CollectiveKind kind);
  void inject_exit_faults(CollectiveKind kind);

  void all_reduce_direct(std::span<float> data, ReduceOp op);
  void all_reduce_ring(std::span<float> data, ReduceOp op);
  void all_reduce_hierarchical(std::span<float> data, ReduceOp op);
  void all_gather_direct(std::span<const float> send, std::span<float> recv);
  void all_gather_ring(std::span<const float> send, std::span<float> recv);
  void reduce_scatter_direct(std::span<const float> send,
                             std::span<float> recv, ReduceOp op);
  void reduce_scatter_ring(std::span<const float> send, std::span<float> recv,
                           ReduceOp op);

  std::shared_ptr<detail::GroupState> state_;
  int rank_;
  CommStats stats_;
  /// Per-rank collective sequence number feeding FaultPlan::draw; symmetric
  /// SPMD call sequences keep it aligned across ranks, which is what makes
  /// injected schedules deterministic.
  std::uint64_t fault_seq_ = 0;
  /// Completion jitter drawn at entry, slept at exit of the same op.
  std::uint32_t pending_exit_jitter_us_ = 0;
};

/// Owns the shared state for `size` ranks and runs SPMD functions.
class World {
 public:
  explicit World(int size, Topology topo);
  explicit World(int size) : World(size, Topology::flat(size)) {}

  [[nodiscard]] int size() const { return size_; }

  /// Installs deterministic fault injection (fault.hpp) on every group this
  /// world creates, including split() children. Pass nullptr to clear.
  /// This is how FaultyWorld wraps a World; call before run().
  void set_fault_plan(std::shared_ptr<const FaultPlan> plan) {
    fault_plan_ = std::move(plan);
  }
  [[nodiscard]] const std::shared_ptr<const FaultPlan>& fault_plan() const {
    return fault_plan_;
  }

  /// Runs `fn(comm)` on every rank in its own thread and joins. If any rank
  /// throws, the first exception is rethrown after all threads finish.
  /// Rank bodies must keep collective call sequences symmetric.
  void run(const std::function<void(Communicator&)>& fn);

 private:
  int size_;
  Topology topo_;
  std::shared_ptr<const FaultPlan> fault_plan_;
};

/// Accumulates the element-wise reduction `op` of `src` into `dst`.
void reduce_into(std::span<float> dst, std::span<const float> src,
                 ReduceOp op);

}  // namespace dchag::comm
