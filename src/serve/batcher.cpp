#include "serve/batcher.hpp"

#include <cstdint>
#include <cstring>

namespace dchag::serve {

std::string Batcher::lane_key(const Request& r) {
  std::string key;
  key.reserve(64);
  for (Index c : r.channels) {
    key += std::to_string(c);
    key += ',';
  }
  key += '|';
  // Bit-exact lead-time match (float equality would conflate -0.0/0.0).
  std::uint32_t lead_bits = 0;
  static_assert(sizeof(lead_bits) == sizeof(r.lead_time));
  std::memcpy(&lead_bits, &r.lead_time, sizeof(lead_bits));
  key += std::to_string(lead_bits);
  key += '|';
  key += r.images.shape().to_string();
  return key;
}

ResponseFuture Batcher::submit(Request r) {
  DCHAG_CHECK(r.images.rank() == 3,
              "request images must be one sample [C, H, W], got "
                  << r.images.shape().to_string());
  if (!r.channels.empty()) {
    DCHAG_CHECK(r.images.dim(0) == static_cast<Index>(r.channels.size()),
                "request carries " << r.images.dim(0) << " channel slabs but "
                                   << r.channels.size() << " channel ids");
    // Reject malformed subsets at the door: canonical (sorted) ids are
    // what the model layers require and what keeps lane keys unique.
    Index prev = -1;
    for (Index c : r.channels) {
      DCHAG_CHECK(c > prev,
                  "request channels must be strictly increasing");
      prev = c;
    }
  }
  PendingRequest pending;
  pending.request = std::move(r);
  pending.enqueued = std::chrono::steady_clock::now();
  ResponseFuture future = pending.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    DCHAG_CHECK(!closed_, "submit() on a closed batcher");
    lanes_[lane_key(pending.request)].push_back(std::move(pending));
    ++depth_;
  }
  cv_.notify_all();
  return future;
}

std::optional<Batch> Batcher::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    // 1. A lane filled to max_batch ships immediately; otherwise find the
    // lane whose oldest request expires first.
    auto ready = lanes_.end();
    auto oldest = lanes_.end();
    for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
      if (it->second.empty()) continue;
      if (static_cast<Index>(it->second.size()) >= cfg_.max_batch) {
        ready = it;
        break;
      }
      if (oldest == lanes_.end() ||
          it->second.front().enqueued < oldest->second.front().enqueued) {
        oldest = it;
      }
    }
    // 2. On timeout (or shutdown flush) the oldest lane ships partial.
    if (ready == lanes_.end() && oldest != lanes_.end() &&
        (closed_ || now >= oldest->second.front().enqueued + cfg_.max_wait)) {
      ready = oldest;
    }
    if (ready != lanes_.end()) {
      Batch batch;
      auto& lane = ready->second;
      const auto take = std::min<std::size_t>(
          lane.size(), static_cast<std::size_t>(cfg_.max_batch));
      batch.items.reserve(take);
      for (std::size_t i = 0; i < take; ++i) {
        batch.items.push_back(std::move(lane.front()));
        lane.pop_front();
      }
      if (lane.empty()) lanes_.erase(ready);
      depth_ -= take;
      return batch;
    }
    if (closed_) return std::nullopt;  // drained
    if (oldest == lanes_.end()) {
      cv_.wait(lock);
    } else {
      cv_.wait_until(lock,
                     oldest->second.front().enqueued + cfg_.max_wait);
    }
  }
}

void Batcher::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t Batcher::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return depth_;
}

}  // namespace dchag::serve
