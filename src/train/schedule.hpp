// Learning-rate schedules and gradient clipping — the standard FM
// training loop utilities (warmup + cosine decay is what ClimaX/ORBIT-
// style trainings use).
#pragma once

#include <cmath>

#include "tensor/module.hpp"

namespace dchag::train {

/// Linear warmup to `base_lr` over `warmup_steps`, then cosine decay to
/// `min_lr` at `total_steps`. Steps beyond total_steps hold min_lr.
class WarmupCosineSchedule {
 public:
  WarmupCosineSchedule(float base_lr, std::int64_t warmup_steps,
                       std::int64_t total_steps, float min_lr = 0.0f)
      : base_lr_(base_lr),
        min_lr_(min_lr),
        warmup_(warmup_steps),
        total_(total_steps) {
    DCHAG_CHECK(warmup_steps >= 0 && total_steps > warmup_steps,
                "schedule needs total_steps > warmup_steps >= 0");
    DCHAG_CHECK(base_lr > 0.0f && min_lr >= 0.0f && min_lr <= base_lr,
                "schedule needs 0 <= min_lr <= base_lr");
  }

  [[nodiscard]] float lr(std::int64_t step) const {
    if (step < warmup_) {
      return base_lr_ * static_cast<float>(step + 1) /
             static_cast<float>(warmup_);
    }
    if (step >= total_) return min_lr_;
    const float progress = static_cast<float>(step - warmup_) /
                           static_cast<float>(total_ - warmup_);
    const float cosine = 0.5f * (1.0f + std::cos(3.14159265f * progress));
    return min_lr_ + (base_lr_ - min_lr_) * cosine;
  }

 private:
  float base_lr_;
  float min_lr_;
  std::int64_t warmup_;
  std::int64_t total_;
};

/// Clips the global L2 norm of all gradients to `max_norm` (in place).
/// Returns the pre-clip norm. Parameters without gradients are skipped.
inline float clip_grad_norm(std::span<const autograd::Variable> params,
                            float max_norm) {
  DCHAG_CHECK(max_norm > 0.0f, "max_norm must be positive");
  double sq = 0.0;
  for (const autograd::Variable& p : params) {
    if (!p.has_grad()) continue;
    for (float g : p.node()->grad.span())
      sq += static_cast<double>(g) * g;
  }
  const float norm = static_cast<float>(std::sqrt(sq));
  if (norm > max_norm) {
    const float scale = max_norm / norm;
    for (const autograd::Variable& p : params) {
      if (!p.has_grad()) continue;
      for (float& g : p.node()->grad.span()) g *= scale;
    }
  }
  return norm;
}

}  // namespace dchag::train
