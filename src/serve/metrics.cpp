#include "serve/metrics.hpp"

#include <sstream>

namespace dchag::serve {

std::string Metrics::Snapshot::to_string() const {
  std::ostringstream os;
  os << "requests=" << requests << " batches=" << batches
     << " failed=" << failed << " mean_batch=" << mean_batch_size
     << " p50=" << p50_ms << "ms p95=" << p95_ms << "ms p99=" << p99_ms
     << "ms queue=" << mean_queue_ms << "ms forward=" << mean_forward_ms
     << "ms rate=" << requests_per_s << "req/s max_depth="
     << max_queue_depth << " recoveries=" << recoveries << " recovery="
     << mean_recovery_ms << "ms hedged=" << hedged_dispatches
     << " degraded=" << degraded_responses;
  return os.str();
}

}  // namespace dchag::serve
