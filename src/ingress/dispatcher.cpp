#include "ingress/dispatcher.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <spawn.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstring>

#include "tensor/check.hpp"

extern char** environ;

namespace dchag::ingress {

namespace {

double ms_between(std::chrono::steady_clock::time_point a,
                  std::chrono::steady_clock::time_point b) {
  return std::chrono::duration<double, std::milli>(b - a).count();
}

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::string exe_dir() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return {};
  buf[n] = '\0';
  std::string path(buf);
  const std::size_t slash = path.rfind('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

}  // namespace

// ---------------------------------------------------------------------------
// Construction / worker spawning
// ---------------------------------------------------------------------------

std::string Ingress::resolve_worker_exe() const {
  std::vector<std::string> candidates;
  if (!cfg_.worker_exe.empty()) candidates.push_back(cfg_.worker_exe);
  if (const char* env = std::getenv(kEnvWorkerExe);
      env != nullptr && env[0] != '\0')
    candidates.emplace_back(env);
  // Build-tree layout: tests live in build/tests/, examples in
  // build/examples/, benches in build/bench/ — the worker binary is a
  // sibling tree away at build/src/ingress/.
  if (const std::string dir = exe_dir(); !dir.empty()) {
    candidates.push_back(dir + "/dchag_ingress_worker");
    candidates.push_back(dir + "/../src/ingress/dchag_ingress_worker");
    candidates.push_back(dir + "/../../src/ingress/dchag_ingress_worker");
  }
  for (const std::string& c : candidates) {
    if (::access(c.c_str(), X_OK) == 0) return c;
  }
  DCHAG_FAIL(
      "cannot locate the dchag_ingress_worker binary; set "
      "IngressConfig::worker_exe or $DCHAG_ING_WORKER");
}

std::unique_ptr<Ingress::Worker> Ingress::spawn_worker() {
  auto w = std::make_unique<Worker>();
  w->spawn_seq = next_spawn_seq_++;
  const std::string ring_name = make_ring_name();
  w->ring = std::make_unique<ShmRing>(ShmRing::create(ring_name, cfg_.ring));
  w->last_beat_seen = std::chrono::steady_clock::now();

  // Child environment: the parent's, minus every context/ingress variable
  // we are about to restate, plus the dispatcher's effective context
  // re-exported through Context::to_env() — the cross-process context
  // hand-off — and the worker-protocol variables.
  std::vector<std::string> env_store;
  for (char** it = environ; it != nullptr && *it != nullptr; ++it) {
    const std::string entry(*it);
    const auto is = [&entry](const char* name) {
      const std::size_t n = std::strlen(name);
      return entry.compare(0, n, name) == 0 && entry.size() > n &&
             entry[n] == '=';
    };
    if (is("DCHAG_KERNEL") || is("DCHAG_THREADS") || is("DCHAG_COMM") ||
        is("DCHAG_COMM_CHUNKS") || is(kEnvCheckpoint) || is(kEnvModelSpec) ||
        is(kEnvCrashAt))
      continue;
    env_store.push_back(entry);
  }
  for (const runtime::Context::EnvEntry& e : ctx_.to_env())
    env_store.push_back(e.name + "=" + e.value);
  env_store.push_back(std::string(kEnvCheckpoint) + "=" + cfg_.checkpoint);
  env_store.push_back(std::string(kEnvModelSpec) + "=" +
                      cfg_.model.serialize());
  for (const CrashSpec& c : cfg_.crash_plan) {
    if (c.spawn_seq == w->spawn_seq) {
      env_store.push_back(std::string(kEnvCrashAt) + "=" +
                          std::to_string(c.after_requests));
      break;
    }
  }

  std::vector<char*> envp;
  envp.reserve(env_store.size() + 1);
  for (std::string& s : env_store) envp.push_back(s.data());
  envp.push_back(nullptr);

  std::string exe = worker_exe_;
  std::string arg_ring = ring_name;
  char* argv[] = {exe.data(), arg_ring.data(), nullptr};

  pid_t pid = -1;
  const int rc =
      ::posix_spawn(&pid, exe.c_str(), nullptr, nullptr, argv, envp.data());
  if (rc != 0) {
    w->ring->unlink();
    DCHAG_FAIL("posix_spawn(" << exe << ") failed: " << std::strerror(rc));
  }
  w->pid = pid;
  return w;
}

Ingress::Ingress(IngressConfig cfg, const runtime::Context& ctx)
    : cfg_(std::move(cfg)), ctx_(ctx.effective()) {
  DCHAG_CHECK(cfg_.min_workers >= 1 && cfg_.max_workers >= cfg_.min_workers,
              "Ingress needs 1 <= min_workers <= max_workers");
  DCHAG_CHECK(cfg_.queue_capacity >= 1, "Ingress needs queue_capacity >= 1");
  worker_exe_ = resolve_worker_exe();

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  DCHAG_CHECK(listen_fd_ >= 0, "socket() failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(cfg_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    DCHAG_FAIL("bind(127.0.0.1:" << cfg_.port
                                 << ") failed: " << std::strerror(err));
  }
  DCHAG_CHECK(::listen(listen_fd_, 128) == 0,
              "listen() failed: " << std::strerror(errno));
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < cfg_.min_workers; ++i)
      workers_.push_back(spawn_worker());
    last_busy_ = std::chrono::steady_clock::now();
  }

  accept_thread_ = std::thread([this] { accept_loop(); });
  dispatch_thread_ = std::thread([this] { dispatch_loop(); });
  monitor_thread_ = std::thread([this] { monitor_loop(); });
}

Ingress::~Ingress() { drain(); }

// ---------------------------------------------------------------------------
// Introspection
// ---------------------------------------------------------------------------

std::size_t Ingress::worker_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& w : workers_)
    if (!w->retiring) ++n;
  return n;
}

std::size_t Ingress::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

Counters::Snapshot Ingress::counters() const {
  std::size_t workers = 0, depth = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& w : workers_)
      if (!w->retiring) ++workers;
    depth = queue_.size();
  }
  return counters_.snapshot(workers, depth);
}

std::string Ingress::metrics_text() const {
  return metrics_.summary().to_exposition() + counters().to_exposition();
}

// ---------------------------------------------------------------------------
// Listener + connections
// ---------------------------------------------------------------------------

void Ingress::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listener closed by drain()
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    counters_.connection();
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.push_back(conn);
    }
    std::lock_guard<std::mutex> lock(conn_threads_mu_);
    conn_threads_.emplace_back(
        [this, conn] { connection_loop(std::move(conn)); });
  }
}

void Ingress::send_error(const std::shared_ptr<Conn>& conn, std::uint64_t id,
                         ErrorCode code, const std::string& message) {
  const std::vector<std::uint8_t> payload =
      encode_error(WireError{id, code, message});
  std::lock_guard<std::mutex> lock(conn->write_mu);
  if (conn->fd >= 0) write_frame(conn->fd, MsgType::kError, payload);
}

void Ingress::handle_infer(const std::shared_ptr<Conn>& conn,
                           const Frame& frame) {
  InferRequest req;
  try {
    req = decode_infer(frame.payload.data(), frame.payload.size());
  } catch (const IngressError& e) {
    counters_.reject_bad();
    send_error(conn, 0, e.code(), e.what());
    return;
  }
  if (static_cast<std::uint64_t>(req.images.numel()) >
      cfg_.ring.max_payload_floats) {
    counters_.reject_bad();
    send_error(conn, req.id, ErrorCode::kBadRequest,
               "sample exceeds the ring payload budget");
    return;
  }

  Job job;
  job.client_id = req.id;
  job.conn = conn;
  job.hdr.lead_time = req.lead_time;
  job.hdr.n_channels = static_cast<std::uint32_t>(req.channels.size());
  for (std::size_t i = 0; i < req.channels.size(); ++i)
    job.hdr.channels[i] = req.channels[i];
  job.hdr.c = req.images.dim(0);
  job.hdr.h = req.images.dim(1);
  job.hdr.w = req.images.dim(2);
  job.payload.assign(req.images.data(),
                     req.images.data() + req.images.numel());
  job.accepted = std::chrono::steady_clock::now();

  // Admission control: typed rejects, never silent drops and never an
  // unbounded queue. Once a request is admitted here it WILL be answered
  // (redispatch survives worker crashes; drain finishes the queue).
  ErrorCode reject;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_) {
      counters_.reject_draining();
      reject = ErrorCode::kShuttingDown;
    } else if (queue_.size() >= cfg_.queue_capacity) {
      counters_.reject_saturated();
      reject = ErrorCode::kSaturated;
    } else {
      job.ingress_id = next_ingress_id_++;
      job.hdr.id = job.ingress_id;
      queue_.push_back(std::move(job));
      counters_.accept();
      metrics_.observe_queue_depth(queue_.size());
      metrics_.mark_window(now_ms());
      work_cv_.notify_all();
      return;
    }
  }
  send_error(conn, req.id, reject,
             reject == ErrorCode::kShuttingDown
                 ? "ingress is draining"
                 : "admission queue is full, retry later");
}

void Ingress::connection_loop(std::shared_ptr<Conn> conn) {
  for (;;) {
    std::optional<Frame> frame;
    try {
      frame = read_frame(conn->fd);
    } catch (const IngressError& e) {
      // Framing violations desynchronize the stream; answer and hang up.
      counters_.reject_bad();
      send_error(conn, 0, e.code(), e.what());
      break;
    }
    if (!frame) break;  // EOF
    switch (frame->type) {
      case MsgType::kInfer:
        handle_infer(conn, *frame);
        break;
      case MsgType::kMetricsQuery: {
        const std::string text = metrics_text();
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (conn->fd >= 0)
          write_frame(conn->fd, MsgType::kMetricsText,
                      reinterpret_cast<const std::uint8_t*>(text.data()),
                      text.size());
        break;
      }
      case MsgType::kHealthQuery: {
        static constexpr char kOk[] = "ok";
        std::lock_guard<std::mutex> lock(conn->write_mu);
        if (conn->fd >= 0)
          write_frame(conn->fd, MsgType::kHealthOk,
                      reinterpret_cast<const std::uint8_t*>(kOk), 2);
        break;
      }
      default:
        counters_.reject_bad();
        send_error(conn, 0, ErrorCode::kBadRequest,
                   "unexpected frame type from client");
        break;
    }
  }
  // Leave fd open for in-flight responses of this connection; drain()
  // closes every conn once all accepted work is answered.
}

// ---------------------------------------------------------------------------
// Dispatch
// ---------------------------------------------------------------------------

void Ingress::dispatch_loop() {
  struct Done {
    Job job;
    RingResponse hdr;
    std::vector<float> payload;
    std::string error;
  };
  for (;;) {
    std::vector<Done> done;
    bool idle_now = false;
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopped_) return;

      // 1. Collect finished work from every worker's response ring.
      for (auto& w : workers_) {
        RingResponse resp;
        std::vector<float> payload;
        std::string error;
        while (w->ring->try_pop_response(&resp, &payload, &error)) {
          auto it = w->in_flight.find(resp.id);
          if (it == w->in_flight.end()) continue;  // stale after redispatch
          done.push_back(Done{std::move(it->second), resp,
                              std::move(payload), std::move(error)});
          w->in_flight.erase(it);
          payload.clear();
          error.clear();
        }
      }

      // 2. Round-robin the admission queue onto workers with ring space.
      while (!queue_.empty() && !workers_.empty()) {
        bool placed = false;
        const std::size_t n = workers_.size();
        for (std::size_t probe = 0; probe < n; ++probe) {
          Worker& w = *workers_[(rr_cursor_ + probe) % n];
          if (w.retiring || w.pid < 0) continue;
          if (w.in_flight.size() >= w.ring->slots()) continue;
          Job& job = queue_.front();
          if (!w.ring->try_push_request(job.hdr, job.payload.data(),
                                        job.payload.size()))
            continue;
          job.dispatched = std::chrono::steady_clock::now();
          w.in_flight.emplace(job.ingress_id, std::move(job));
          queue_.pop_front();
          rr_cursor_ = static_cast<int>((rr_cursor_ + probe + 1) % n);
          placed = true;
          break;
        }
        if (!placed) break;  // every worker full — backpressure holds
      }

      undelivered_ += done.size();
      std::size_t inflight = 0;
      for (const auto& w : workers_) inflight += w->in_flight.size();
      idle_now = queue_.empty() && inflight == 0 && undelivered_ == 0;

      if (done.empty()) {
        // Response rings have no doorbell (cross-process), so poll:
        // tightly while work is in flight, lazily when idle.
        work_cv_.wait_for(lock, inflight > 0
                                    ? std::chrono::microseconds(100)
                                    : std::chrono::milliseconds(2));
      }
    }
    if (idle_now) drain_cv_.notify_all();

    // 3. Deliver outside the lock: socket writes must not stall dispatch.
    for (Done& d : done) {
      const auto now = std::chrono::steady_clock::now();
      const double total = ms_between(d.job.accepted, now);
      const double queued = ms_between(d.job.accepted, d.job.dispatched);
      if (d.hdr.status == 0) {
        InferResult result;
        result.id = d.job.client_id;
        result.pred = Tensor::from_data(
            tensor::Shape{d.hdr.s, d.hdr.d}, std::move(d.payload));
        const std::vector<std::uint8_t> bytes = encode_result(result);
        std::lock_guard<std::mutex> lock(d.job.conn->write_mu);
        if (d.job.conn->fd >= 0)
          write_frame(d.job.conn->fd, MsgType::kResult, bytes);
      } else {
        send_error(d.job.conn, d.job.client_id,
                   static_cast<ErrorCode>(d.hdr.status), d.error);
      }
      metrics_.record_request(total, queued);
      metrics_.record_batch(1, total - queued);
      metrics_.mark_window(now_ms());
      counters_.complete();
    }
    if (!done.empty()) {
      std::lock_guard<std::mutex> lock(mu_);
      undelivered_ -= done.size();
      if (undelivered_ == 0) drain_cv_.notify_all();
    }
  }
}

// ---------------------------------------------------------------------------
// Health, elasticity, failover
// ---------------------------------------------------------------------------

void Ingress::fail_over(std::unique_ptr<Worker> dead, bool count_restart) {
  // Deliver anything the worker answered before dying, then requeue the
  // rest at the FRONT (their latency budget is already spent).
  RingResponse resp;
  std::vector<float> payload;
  std::string error;
  while (dead->ring->try_pop_response(&resp, &payload, &error)) {
    auto it = dead->in_flight.find(resp.id);
    if (it == dead->in_flight.end()) continue;
    // Deliver inline: this is the rare path (worker death), contention
    // with the dispatch thread is irrelevant.
    Job& job = it->second;
    if (resp.status == 0) {
      InferResult result;
      result.id = job.client_id;
      result.pred =
          Tensor::from_data(tensor::Shape{resp.s, resp.d}, payload);
      const std::vector<std::uint8_t> bytes = encode_result(result);
      std::lock_guard<std::mutex> wlock(job.conn->write_mu);
      if (job.conn->fd >= 0)
        write_frame(job.conn->fd, MsgType::kResult, bytes);
    } else {
      send_error(job.conn, job.client_id,
                 static_cast<ErrorCode>(resp.status), error);
    }
    metrics_.record_request(
        ms_between(job.accepted, std::chrono::steady_clock::now()), 0.0);
    counters_.complete();
    dead->in_flight.erase(it);
  }

  std::vector<Job> orphans;
  orphans.reserve(dead->in_flight.size());
  for (auto& [id, job] : dead->in_flight) orphans.push_back(std::move(job));
  std::sort(orphans.begin(), orphans.end(),
            [](const Job& a, const Job& b) {
              return a.ingress_id > b.ingress_id;
            });
  for (Job& job : orphans) queue_.push_front(std::move(job));
  if (!orphans.empty()) {
    counters_.redispatch(orphans.size());
    work_cv_.notify_all();
  }
  if (count_restart) counters_.worker_restart();
  dead->ring->unlink();
}

void Ingress::monitor_loop() {
  int target = cfg_.min_workers;
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (stopped_) return;
      const auto now = std::chrono::steady_clock::now();

      // Reap exits and detect hangs.
      for (std::size_t i = 0; i < workers_.size();) {
        Worker& w = *workers_[i];
        int status = 0;
        const pid_t rc = ::waitpid(w.pid, &status, WNOHANG);
        bool dead = rc == w.pid;
        if (!dead && w.ring->state() == WorkerState::kReady &&
            !w.in_flight.empty()) {
          const std::uint64_t hb = w.ring->heartbeat();
          if (hb != w.last_heartbeat) {
            w.last_heartbeat = hb;
            w.last_beat_seen = now;
          } else if (now - w.last_beat_seen > cfg_.heartbeat_timeout) {
            // Liveness word stalled with work in flight: hung, not dead.
            ::kill(w.pid, SIGKILL);
            ::waitpid(w.pid, &status, 0);
            dead = true;
          }
        }
        if (dead) {
          std::unique_ptr<Worker> gone = std::move(workers_[i]);
          workers_.erase(workers_.begin() + static_cast<std::ptrdiff_t>(i));
          const bool crashed = !gone->retiring;
          const auto t0 = std::chrono::steady_clock::now();
          fail_over(std::move(gone), /*count_restart=*/crashed);
          if (crashed) {
            metrics_.record_recovery(
                ms_between(t0, std::chrono::steady_clock::now()));
          }
        } else {
          ++i;
        }
      }

      // Elastic pool sizing from queue pressure.
      std::size_t inflight = 0;
      for (const auto& w : workers_) inflight += w->in_flight.size();
      const bool busy = !queue_.empty() || inflight > 0;
      if (busy) last_busy_ = now;
      if (!draining_) {
        if (queue_.size() >= cfg_.scale_up_depth &&
            target < cfg_.max_workers) {
          ++target;
          counters_.scale_up();
        } else if (!busy && target > cfg_.min_workers &&
                   now - last_busy_ > cfg_.scale_down_idle) {
          --target;
          counters_.scale_down();
          // Retire the newest non-retiring worker via its control word;
          // it exits cleanly and the reap above forgets it.
          for (auto it = workers_.rbegin(); it != workers_.rend(); ++it) {
            if (!(*it)->retiring) {
              (*it)->retiring = true;
              (*it)->ring->set_control(ControlWord::kDrainStop);
              break;
            }
          }
          last_busy_ = now;  // rate-limit consecutive retirements
        }
      }

      // Heal the pool back to target (also mid-drain: accepted work must
      // still finish even when its worker died during shutdown).
      std::size_t live = 0;
      for (const auto& w : workers_)
        if (!w->retiring) ++live;
      const bool need_workers = !draining_ || busy;
      while (need_workers && live < static_cast<std::size_t>(target)) {
        workers_.push_back(spawn_worker());
        ++live;
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
}

// ---------------------------------------------------------------------------
// Graceful shutdown
// ---------------------------------------------------------------------------

void Ingress::drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  // Stop accepting connections; in-flight and queued work keeps going.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();

  // Every ACCEPTED request must be answered before teardown.
  {
    std::unique_lock<std::mutex> lock(mu_);
    drain_cv_.wait(lock, [this] {
      std::size_t inflight = 0;
      for (const auto& w : workers_) inflight += w->in_flight.size();
      if (queue_.empty() && inflight == 0 && undelivered_ == 0) return true;
      work_cv_.notify_all();
      return false;
    });
    stopped_ = true;
    work_cv_.notify_all();
  }
  if (dispatch_thread_.joinable()) dispatch_thread_.join();
  if (monitor_thread_.joinable()) monitor_thread_.join();

  // Stop workers through their control word; escalate only if one
  // ignores it past a generous deadline.
  std::vector<std::unique_ptr<Worker>> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (auto& w : workers) w->ring->set_control(ControlWord::kDrainStop);
  for (auto& w : workers) {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    int status = 0;
    for (;;) {
      const pid_t rc = ::waitpid(w->pid, &status, WNOHANG);
      if (rc == w->pid || rc < 0) break;
      if (std::chrono::steady_clock::now() > deadline) {
        ::kill(w->pid, SIGKILL);
        ::waitpid(w->pid, &status, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    w->ring->unlink();
  }

  // Hang up on every client; connection threads unblock from recv.
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.swap(conns_);
  }
  for (auto& c : conns) {
    std::lock_guard<std::mutex> lock(c->write_mu);
    if (c->fd >= 0) {
      ::shutdown(c->fd, SHUT_RDWR);
      ::close(c->fd);
      c->fd = -1;
    }
  }
  std::vector<std::thread> conn_threads;
  {
    std::lock_guard<std::mutex> lock(conn_threads_mu_);
    conn_threads.swap(conn_threads_);
  }
  for (std::thread& t : conn_threads) t.join();
  metrics_.mark_window(now_ms());
}

}  // namespace dchag::ingress
