// Shim TU: consumes the deprecated SpmdEngineConfig::fault_plan slot.
#define DCHAG_ALLOW_DEPRECATED_CONFIG 1

#include "serve/spmd_engine.hpp"

#include <algorithm>
#include <numeric>
#include <utility>

#include "core/dchag_frontend.hpp"
#include "tensor/ops.hpp"
#include "train/checkpoint.hpp"

namespace dchag::serve {

namespace {

std::string shard_path(const std::string& dir, int world_rank) {
  return dir + "/rank_" + std::to_string(world_rank) + ".ckpt";
}

std::vector<int> full_membership(int ranks) {
  std::vector<int> full(static_cast<std::size_t>(ranks));
  std::iota(full.begin(), full.end(), 0);
  return full;
}

}  // namespace

SpmdEngine::SpmdEngine(int ranks, RankModelFactory factory,
                       SpmdEngineConfig cfg, const runtime::Context& ctx)
    // Capture the submitter's EFFECTIVE context: scopes active on the
    // constructing thread fold in here and reach every rank thread.
    : ranks_(ranks),
      ctx_(ctx.effective()),
      factory_(std::move(factory)),
      metrics_(std::move(cfg.metrics)),
      checkpoint_dir_(std::move(cfg.checkpoint_dir)),
      hedge_timeout_(cfg.hedge_timeout) {
  DCHAG_CHECK(ranks_ >= 1, "SpmdEngine needs >= 1 rank");
  DCHAG_CHECK(factory_ != nullptr, "SpmdEngine needs a model factory");
#ifdef DCHAG_DEPRECATED_CONFIG
  if (cfg.fault_plan)
    ctx_ = ctx_.to_builder().fault_plan(cfg.fault_plan).build();
#endif
  serving_members_ = full_membership(ranks_);
  world_thread_ = std::thread([this] {
    try {
      comm::World world(ranks_);
      if (ctx_.fault_plan()) world.set_fault_plan(ctx_.fault_plan());
      world.run([&](comm::Communicator& comm) {
        // Rank threads run under the engine's context: the factory's
        // front-ends inherit its kernel/comm policy unless they pin
        // their own. A typical SPMD deployment pins kBlocked on the
        // engine context so P concurrent ranks don't contend for the
        // shared ThreadPool (they ARE the parallelism).
        runtime::Scope ctx_scope(ctx_);
        // Tape-free for the lifetime of this rank thread: serving never
        // records autograd history.
        autograd::NoGradGuard no_grad;
        std::unique_ptr<model::ForecastModel> model;
        try {
          model = factory_(comm);
          DCHAG_CHECK(model != nullptr, "rank model factory returned null");
          // Serving plan: eval + pre-packed GEMM panels + fused epilogues
          // (bit-identical forward; see tensor/plan.hpp).
          model->freeze_for_serving();
          // Cold-start shard: what a respawned rank reloads after a
          // death. Written before ready so a heal never races the save.
          if (!checkpoint_dir_.empty())
            train::save_module(shard_path(checkpoint_dir_, comm.rank()),
                               *model);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(mu_);
            ++failed_ranks_;
          }
          cv_done_.notify_all();
          throw;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++ready_ranks_;
        }
        cv_done_.notify_all();
        // Construction barrier: if any rank's factory threw, the others
        // must exit too — otherwise they would wait for jobs forever and
        // World::run could never join.
        {
          std::unique_lock<std::mutex> lock(mu_);
          cv_done_.wait(lock, [&] {
            return ready_ranks_ + failed_ranks_ >= ranks_;
          });
          if (failed_ranks_ > 0) return;
        }
        // Rank-private arena: this thread runs every forward it serves,
        // so steady-state requests reuse the warm-up buffers.
        tensor::plan::Arena arena;
        tensor::plan::ArenaScope arena_scope(arena);
        serve_loop(&comm, model.get(), /*min_stamp=*/0);
      });
    } catch (...) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        failure_ = std::current_exception();
        stop_ = true;
        ready_ranks_ = ranks_;  // unblock the constructor's wait
      }
      cv_done_.notify_all();
      cv_job_.notify_all();
    }
  });

  std::unique_lock<std::mutex> lock(mu_);
  // Either every rank reports ready, or the world thread dies (its catch
  // block sets failure_ and forces ready_ranks_ up to unblock us).
  cv_done_.wait(lock, [&] { return ready_ranks_ >= ranks_; });
  if (failure_) {
    lock.unlock();
    stop_and_join();
    std::rethrow_exception(failure_);
  }
}

SpmdEngine::~SpmdEngine() { stop_and_join(); }

void SpmdEngine::stop_and_join() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  cv_done_.notify_all();
  if (world_thread_.joinable()) world_thread_.join();
  // Respawned rank threads are engine-owned, not World-owned. Drain in a
  // loop: a recovery racing the shutdown may append one more batch.
  for (;;) {
    std::vector<std::thread> drained;
    {
      std::lock_guard<std::mutex> lock(mu_);
      drained.swap(respawn_threads_);
    }
    if (drained.empty()) break;
    for (std::thread& t : drained) t.join();
  }
}

void SpmdEngine::serve_loop(comm::Communicator* active,
                            model::ForecastModel* model,
                            std::uint64_t min_stamp) {
  auto* fe = dynamic_cast<core::DchagFrontEnd*>(&model->frontend_mut());
  // Regrouped handles (degraded survivor groups, adopted healed groups)
  // live here; `active` always points at the current one.
  std::optional<comm::Communicator> owned;
  std::uint64_t adopted = 0;
  std::uint64_t seen = 0;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      // A respawned participant (min_stamp > 0) consumes only jobs
      // stamped at or past its recovery epoch: everything earlier ran —
      // or is running — on groups it is not part of.
      cv_job_.wait(lock, [&] {
        return stop_ || (job_seq_ > seen && job_.heal_epoch >= min_stamp);
      });
      if (stop_) return;
      seen = job_seq_;
      job = job_;
    }
    bool done = false;
    while (!done) {
      try {
        if (fe != nullptr && job.heal_epoch > adopted) {
          // A heal completed: every participant moves to the full-width
          // group at this same stamped job, so the collective schedule
          // stays lockstep. The respawned rank pre-joined the same group
          // ("healed@<epoch>") through its minted handle.
          const std::vector<int> full = full_membership(ranks_);
          owned = active->split_survivors(
              full, "healed@" + std::to_string(job.heal_epoch));
          active = &*owned;
          fe->rebind(*active, full);
          adopted = job.heal_epoch;
        }
        execute_job(*active, *model, job, seen);
        done = true;
      } catch (const comm::RankFailure&) {
        // Structural fault. Non-D-CHAG front-ends cannot regroup (their
        // channel partition is invisible to us): let the world die and
        // surface the repro string through failure_.
        if (fe == nullptr) throw;
        if (!recover(&active, &owned, fe)) return;  // casualty: exit
        // Survivor: retry the interrupted job on the regrouped world.
      }
    }
  }
}

void SpmdEngine::execute_job(comm::Communicator& comm,
                             model::ForecastModel& model, const Job& job,
                             std::uint64_t seq) {
  auto* fe = dynamic_cast<core::DchagFrontEnd*>(&model.frontend_mut());
  const bool degraded_world = fe != nullptr && comm.size() < fe->world_size();
  // A throwing forward must not kill the world: capture the error and
  // keep serving. Model validation runs on identical inputs on every rank
  // before any collective, so failures are uniform and all ranks reach
  // the barrier with the same (error) outcome. RankFailure is the
  // exception: it unwinds into recovery instead of publishing.
  autograd::Variable pred;
  std::exception_ptr err;
  bool degraded_answer = false;
  try {
    if (!degraded_world) {
      pred = job.channels->empty()
                 ? model.predict(model.frontend().select_input(*job.images),
                                 job.lead_time)
                 : model.predict_subset(*job.images, *job.channels,
                                        job.lead_time);
    } else {
      // Degraded survivor group: serve from the surviving channels. The
      // head still predicts every target channel, so the output shape is
      // unchanged, and the subset forward's arithmetic is identical to a
      // healthy world's forward over the same channel subset.
      const Index c_local = fe->local_channels();
      std::vector<Index> surviving;
      surviving.reserve(fe->logical_slots().size() *
                        static_cast<std::size_t>(c_local));
      for (int slot : fe->logical_slots())
        for (Index c = 0; c < c_local; ++c)
          surviving.push_back(static_cast<Index>(slot) * c_local + c);
      if (job.channels->empty()) {
        // Full-channel request: slice the survivors' slots out of the
        // full batch and run the subset path over all of them.
        std::vector<Tensor> slabs;
        slabs.reserve(fe->logical_slots().size());
        for (int slot : fe->logical_slots())
          slabs.push_back(tensor::ops::slice(
              *job.images, 1, static_cast<Index>(slot) * c_local, c_local));
        const Tensor sub = slabs.size() == 1 ? slabs.front()
                                             : tensor::ops::concat(slabs, 1);
        pred = model.predict_subset(sub, surviving, job.lead_time);
        degraded_answer = true;
      } else {
        // Subset request: serve the surviving intersection.
        std::vector<Index> inter;
        std::vector<Index> cols;  // positions within the request batch
        for (std::size_t i = 0; i < job.channels->size(); ++i) {
          const Index c = (*job.channels)[i];
          if (std::binary_search(surviving.begin(), surviving.end(), c)) {
            inter.push_back(c);
            cols.push_back(static_cast<Index>(i));
          }
        }
        DCHAG_CHECK(!inter.empty(),
                    "degraded world: no requested channel survives");
        degraded_answer = inter.size() < job.channels->size();
        std::vector<Tensor> slabs;
        slabs.reserve(cols.size());
        for (Index i : cols)
          slabs.push_back(tensor::ops::slice(*job.images, 1, i, 1));
        const Tensor sub = slabs.size() == 1 ? slabs.front()
                                             : tensor::ops::concat(slabs, 1);
        pred = model.predict_subset(sub, inter, job.lead_time);
      }
    }
  } catch (const comm::RankFailure&) {
    throw;
  } catch (...) {
    err = std::current_exception();
  }
  // All ranks hold the replicated outcome; sync before the group leader
  // publishes so no rank still reads the job slot afterwards.
  comm.barrier();
  if (comm.rank() == 0) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_error_ = err;
      if (!err) result_ = pred.value();
      done_seq_ = std::max(done_seq_, seq);
    }
    if (degraded_answer && !err && metrics_)
      metrics_->record_degraded_response();
    cv_done_.notify_all();
  }
}

bool SpmdEngine::recover(comm::Communicator** active,
                         std::optional<comm::Communicator>* owned,
                         core::DchagFrontEnd* fe) {
  for (;;) {
    const std::uint64_t epoch = (*active)->fault_epoch();
    const std::vector<int> alive = (*active)->alive_world_ranks();
    const int me = (*active)->world_rank();
    if (!std::binary_search(alive.begin(), alive.end(), me))
      return false;  // this participant is the casualty
    comm::Communicator next = (*active)->split_survivors(
        alive, "degraded@" + std::to_string(epoch));
    // Another event may have fired while we regrouped; the group we just
    // joined may then not match what the other survivors build — go
    // again with the fresh epoch. The stale group is abandoned; anyone
    // who DID start waiting in it holds a pre-event handle, which the
    // new event poisons, so nobody is stranded.
    if (next.fault_epoch() != epoch) continue;
    *owned = std::move(next);
    *active = &**owned;
    // Survivor group rank i keeps its original channel slot: world rank
    // r owned slot r at construction, so the alive list IS the slot map.
    fe->rebind(**active, alive);
    if (me == alive.front()) begin_recovery(**active, epoch, alive);
    return true;
  }
}

void SpmdEngine::begin_recovery(comm::Communicator& group,
                                std::uint64_t epoch,
                                const std::vector<int>& alive) {
  const std::vector<int> full = full_membership(ranks_);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> newly_dead;
  for (int r : serving_members_)
    if (!std::binary_search(alive.begin(), alive.end(), r))
      newly_dead.push_back(r);
  serving_members_ = alive;
  if (newly_dead.empty() || stop_) return;
  recovery_start_ = std::chrono::steady_clock::now();
  latest_recovery_epoch_ = epoch;
  for (int r : newly_dead) {
    ++pending_respawns_;
    // Mint the respawned rank's full-width handle here, on a stable
    // communicator; the thread owns it outright. It joins the same
    // "healed@<epoch>" group the survivors adopt at the stamped job.
    respawn_threads_.emplace_back(
        [this, epoch,
         handle = group.split_survivors_for(
             r, full, "healed@" + std::to_string(epoch))]() mutable {
          respawn_rank(std::move(handle), epoch);
        });
  }
}

void SpmdEngine::respawn_rank(comm::Communicator healed,
                              std::uint64_t epoch) {
  runtime::Scope ctx_scope(ctx_);
  autograd::NoGradGuard no_grad;
  std::unique_ptr<model::ForecastModel> model;
  try {
    // Same factory, same master seed: the rebuilt shard's replicated
    // parameters match the survivors'. The checkpoint reload covers
    // deployments whose rank-local weights have drifted from the seed
    // (e.g. after training) — and round-trips bit-for-bit regardless.
    model = factory_(healed);
    DCHAG_CHECK(model != nullptr, "respawn model factory returned null");
    model->eval();
    if (!checkpoint_dir_.empty())
      train::load_module(shard_path(checkpoint_dir_, healed.rank()), *model);
    // Freeze AFTER the reload: load_module mutates weights in place, and
    // panels packed before it would be stale (StaleWeightPackError).
    model->freeze_for_serving();
  } catch (...) {
    // The heal failed but the degraded world keeps serving; surface the
    // error on wait_recovered() rather than killing the engine.
    {
      std::lock_guard<std::mutex> lock(mu_);
      --pending_respawns_;
      heal_error_ = std::current_exception();
    }
    cv_done_.notify_all();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (--pending_respawns_ == 0) {
      // Stamp jobs with the newest recovery epoch: every participant
      // switches to the full-width group at the first job dispatched
      // from here on (run() copies the stamp under this same mutex).
      heal_ready_epoch_ = latest_recovery_epoch_;
      serving_members_ = full_membership(ranks_);
      if (metrics_) {
        metrics_->record_recovery(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - recovery_start_)
                .count());
      }
    }
  }
  cv_done_.notify_all();
  tensor::plan::Arena arena;
  tensor::plan::ArenaScope arena_scope(arena);
  serve_loop(&healed, model.get(), /*min_stamp=*/epoch);
}

Tensor SpmdEngine::run(const Tensor& images,
                       const std::vector<Index>& channels, float lead_time) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::unique_lock<std::mutex> lock(mu_);
  if (failure_) std::rethrow_exception(failure_);
  DCHAG_CHECK(!stop_, "run() on a stopped SpmdEngine");
  job_ = Job{&images, &channels, lead_time, heal_ready_epoch_};
  std::uint64_t seq = ++job_seq_;
  cv_job_.notify_all();
  const auto answered = [&] {
    return done_seq_ >= seq || failure_ != nullptr;
  };
  if (hedge_timeout_.count() <= 0) {
    cv_done_.wait(lock, answered);
  } else if (!cv_done_.wait_for(lock, hedge_timeout_, answered)) {
    // Hedged dispatch: the pass is stuck behind a straggler or an
    // in-flight recovery. Every rank serves passes strictly in order,
    // so a re-issued pass could never overtake the stuck one here —
    // worse, a second seq can reach late-picking ranks as their FIRST
    // pass, splitting the world across pass counts and wedging the
    // collective schedule. The hedge therefore records the tail event
    // and re-signals the world, then rides out the original pass.
    if (metrics_) metrics_->record_hedged_dispatch();
    cv_job_.notify_all();
    cv_done_.wait(lock, answered);
  }
  if (failure_) std::rethrow_exception(failure_);
  if (job_error_) std::rethrow_exception(job_error_);  // world still serves
  return result_;
}

void SpmdEngine::wait_recovered() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_done_.wait(lock, [&] {
    return stop_ || failure_ != nullptr || pending_respawns_ == 0;
  });
  if (failure_) std::rethrow_exception(failure_);
  if (heal_error_) std::rethrow_exception(heal_error_);
}

InferenceFn SpmdEngine::inference_fn() {
  return [this](const Tensor& images, const std::vector<Index>& channels,
                float lead_time) { return run(images, channels, lead_time); };
}

}  // namespace dchag::serve
