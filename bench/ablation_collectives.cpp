// Ablation: collective algorithm choice on the modelled Frontier fabric
// (ring vs hierarchical two-level, intra- vs inter-node groups) — the
// design space behind the paper's §6.3 argument that the hybrid layout
// wins by keeping heavy collectives on Infinity Fabric. In-process
// algorithm timings live in micro_collectives; this bench evaluates the
// alpha-beta cost model at Frontier scale.
#include "bench_util.hpp"
#include "hw/comm_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;
}  // namespace

int main() {
  bench::header("Ablation", "Collective placement on the Frontier fabric");
  const CommCostModel cost(MachineSpec::frontier());
  bench::ShapeChecks checks;

  bench::section("AllReduce time (ms) vs group size and placement, 256 MB");
  std::printf("%8s %18s %18s %12s\n", "ranks", "packed (8/node)",
              "sparse (1/node)", "ratio");
  const double bytes = 256e6;
  for (int p : {8, 16, 32, 64, 128}) {
    const double packed = 1e3 * cost.all_reduce_s(bytes, p, 8);
    const double sparse = 1e3 * cost.all_reduce_s(bytes, p, 1);
    std::printf("%8d %18.2f %18.2f %12.2f\n", p, packed, sparse,
                packed / sparse);
    if (p > 8) {
      checks.expect(packed > sparse,
                    "at " + std::to_string(p) +
                        " ranks, packing 8 ranks/node divides the NIC and "
                        "slows the collective");
    }
  }

  bench::section("intra-node vs cross-node group, identical size");
  for (double mb : {1.0, 16.0, 256.0}) {
    const double intra = 1e3 * cost.all_reduce_s(mb * 1e6, 8, 8);
    const double inter = 1e3 * cost.all_reduce_s(mb * 1e6, 8, 4);
    std::printf("%7.0f MB: intra-node %8.3f ms | 2-node %8.3f ms (%.1fx)\n",
                mb, intra, inter, inter / intra);
    checks.expect(inter > intra,
                  std::to_string(static_cast<int>(mb)) +
                      " MB: an 8-rank group inside one node beats the "
                      "same group across two nodes");
  }

  bench::section("payload scaling at 64 ranks (latency- vs bw-bound)");
  double prev = 0;
  bool monotone = true;
  for (double kb : {1.0, 64.0, 4096.0, 262144.0}) {
    const double t = 1e3 * cost.all_reduce_s(kb * 1e3, 64, 8);
    std::printf("%10.0f KB: %10.3f ms\n", kb, t);
    monotone = monotone && t > prev;
    prev = t;
  }
  checks.expect(monotone, "cost grows monotonically with payload");
  {
    // Tiny payloads are latency-dominated: halving bytes barely helps.
    const double t1 = cost.all_reduce_s(1e3, 64, 8);
    const double t2 = cost.all_reduce_s(2e3, 64, 8);
    checks.expect(t2 / t1 < 1.2,
                  "1-2 KB payloads are latency-bound (alpha term)");
    // Huge payloads are bandwidth-dominated: doubling bytes ~doubles time.
    const double b1 = cost.all_reduce_s(1e9, 64, 8);
    const double b2 = cost.all_reduce_s(2e9, 64, 8);
    checks.expect(b2 / b1 > 1.8, "GB payloads are bandwidth-bound");
  }

  bench::section("the paper's two layouts (7B block activations, 128 ranks)");
  {
    // Baseline: per-block TP AllReduce in 16-rank two-node groups.
    // Hybrid: 4-rank intra-node groups. Same per-rank payload.
    const double act_bytes = 26.0 * 196 * 4096 * 2;  // B*S*D bf16
    const double base = 1e3 * cost.all_reduce_s(act_bytes, 16, 8);
    const double hybrid = 1e3 * cost.all_reduce_s(act_bytes, 4, 4);
    std::printf("TP AllReduce per block: baseline(16 ranks, 2 nodes) "
                "%.3f ms vs hybrid(4 ranks, intra) %.3f ms\n",
                base, hybrid);
    checks.expect(hybrid < base / 2.0,
                  "hybrid's intra-node TP groups cut per-block collective "
                  "time by >2x (paper §6.3)");
  }
  return checks.report();
}
