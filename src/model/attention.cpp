#include "model/attention.hpp"

#include <cmath>

namespace dchag::model {

namespace detail {

/// [*, N, D] -> [*, h, N, dh]: split heads and move them ahead of the
/// token dimension so attention is a batched matmul over [N, dh].
Variable split_heads(const Variable& x, Index heads) {
  const auto& s = x.shape();
  const Index rank = s.rank();
  const Index n = s.dim(rank - 2);
  const Index d = s.dim(rank - 1);
  auto dims = s.dims();
  dims.back() = d / heads;
  dims.insert(dims.end() - 1, heads);
  // [*, N, h, dh] -> permute the last three dims to [*, h, N, dh].
  Variable y = autograd::reshape(
      x, tensor::Shape{std::vector<Index>(dims)});
  std::vector<Index> perm(static_cast<std::size_t>(rank + 1));
  for (Index i = 0; i < rank + 1; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::swap(perm[static_cast<std::size_t>(rank - 1)],
            perm[static_cast<std::size_t>(rank - 2)]);
  (void)n;
  return autograd::permute(y, perm);
}

/// Inverse of split_heads: [*, h, N, dh] -> [*, N, h*dh].
Variable merge_heads(const Variable& x) {
  const auto& s = x.shape();
  const Index rank = s.rank();
  std::vector<Index> perm(static_cast<std::size_t>(rank));
  for (Index i = 0; i < rank; ++i) perm[static_cast<std::size_t>(i)] = i;
  std::swap(perm[static_cast<std::size_t>(rank - 2)],
            perm[static_cast<std::size_t>(rank - 3)]);
  Variable y = autograd::permute(x, perm);  // [*, N, h, dh]
  auto dims = y.shape().dims();
  const Index dh = dims.back();
  dims.pop_back();
  dims.back() *= dh;
  return autograd::reshape(y, tensor::Shape{std::vector<Index>(dims)});
}

/// Scaled dot-product attention on head-split operands
/// q: [*, h, Nq, dh], k/v: [*, h, Nk, dh] -> [*, h, Nq, dh].
Variable scaled_attention(const Variable& q, const Variable& k,
                          const Variable& v, bool fused) {
  const Index dh = q.shape().dim(-1);
  const float s = 1.0f / std::sqrt(static_cast<float>(dh));
  if (fused && !autograd::is_grad_enabled()) {
    // Tape-free: scale + softmax rows fused into the score GEMM's strips.
    tensor::Tensor probs = tensor::ops::matmul_scale_softmax(
        q.value(), tensor::ops::transpose_last2(k.value()), s);
    return Variable::input(tensor::ops::matmul(probs, v.value()));
  }
  Variable scores =
      autograd::scale(autograd::matmul(q, autograd::transpose_last2(k)), s);
  return autograd::matmul(autograd::softmax_lastdim(scores), v);
}

void check_subset_slots(std::span<const Index> slots, Index width,
                        Index ntokens) {
  DCHAG_CHECK(static_cast<Index>(slots.size()) == ntokens,
              "subset has " << ntokens << " tokens but " << slots.size()
                            << " slots");
  Index prev = -1;
  for (Index s : slots) {
    DCHAG_CHECK(s > prev && s < width,
                "subset slots must be strictly increasing in [0, " << width
                                                                   << ")");
    prev = s;
  }
}

}  // namespace detail

using detail::check_subset_slots;
using detail::merge_heads;
using detail::scaled_attention;
using detail::split_heads;

Variable ChannelAggregator::forward_subset(
    const Variable& tokens, std::span<const Index> slots) const {
  check_subset_slots(slots, width(), tokens.shape().dim(2));
  DCHAG_CHECK(static_cast<Index>(slots.size()) == width(),
              "this aggregator has per-slot structure and only accepts the "
              "full channel set of width "
                  << width());
  return forward(tokens);
}

MultiHeadSelfAttention::MultiHeadSelfAttention(Index dim, Index heads,
                                               Rng& rng,
                                               const std::string& name)
    : dim_(dim), heads_(heads) {
  DCHAG_CHECK(dim % heads == 0, "dim " << dim << " % heads " << heads);
  Rng r = rng.fork(std::hash<std::string>{}(name));
  wq_ = std::make_unique<Linear>(dim, dim, r, name + ".wq");
  wk_ = std::make_unique<Linear>(dim, dim, r, name + ".wk");
  wv_ = std::make_unique<Linear>(dim, dim, r, name + ".wv");
  wo_ = std::make_unique<Linear>(dim, dim, r, name + ".wo");
  register_child(*wq_);
  register_child(*wk_);
  register_child(*wv_);
  register_child(*wo_);
}

Variable MultiHeadSelfAttention::forward(const Variable& x) const {
  DCHAG_CHECK(x.shape().dim(-1) == dim_,
              "attention dim mismatch: " << x.shape().to_string());
  Variable q = split_heads(wq_->forward(x), heads_);
  Variable k = split_heads(wk_->forward(x), heads_);
  Variable v = split_heads(wv_->forward(x), heads_);
  return wo_->forward(merge_heads(scaled_attention(q, k, v, is_frozen())));
}

Variable MultiHeadSelfAttention::forward_residual(
    const Variable& x, const Variable& residual) const {
  DCHAG_CHECK(x.shape().dim(-1) == dim_,
              "attention dim mismatch: " << x.shape().to_string());
  Variable q = split_heads(wq_->forward(x), heads_);
  Variable k = split_heads(wk_->forward(x), heads_);
  Variable v = split_heads(wv_->forward(x), heads_);
  return wo_->forward_residual(
      merge_heads(scaled_attention(q, k, v, is_frozen())), residual);
}

CrossAttentionAggregator::CrossAttentionAggregator(
    Index dim, Index heads, Index channels, QueryMode mode, Rng& rng,
    const std::string& name)
    : dim_(dim), heads_(heads), channels_(channels), mode_(mode) {
  DCHAG_CHECK(dim % heads == 0, "dim " << dim << " % heads " << heads);
  DCHAG_CHECK(channels > 0, "aggregator needs channels > 0");
  Rng r = rng.fork(std::hash<std::string>{}(name));
  ln_ = std::make_unique<LayerNorm>(dim, name + ".ln");
  wq_ = std::make_unique<Linear>(dim, dim, r, name + ".wq");
  wk_ = std::make_unique<Linear>(dim, dim, r, name + ".wk");
  wv_ = std::make_unique<Linear>(dim, dim, r, name + ".wv");
  wo_ = std::make_unique<Linear>(dim, dim, r, name + ".wo");
  register_child(*ln_);
  register_child(*wq_);
  register_child(*wk_);
  register_child(*wv_);
  register_child(*wo_);
  if (mode_ == QueryMode::kLearnedQuery) {
    query_ = register_param(name + ".query",
                            r.normal_tensor(tensor::Shape{dim}, 0.0f, 0.02f));
  }
}

Variable CrossAttentionAggregator::forward(const Variable& tokens) const {
  const auto& s = tokens.shape();
  // Width-agnostic: any subset of the nominal channels is accepted
  // (paper §2.1 — inference/fine-tuning on channel subsets).
  DCHAG_CHECK(s.rank() == 4 && s.dim(2) >= 1 && s.dim(2) <= channels_ &&
                  s.dim(3) == dim_,
              "aggregator expects [B, S, 1.." << channels_ << ", " << dim_
                                              << "], got " << s.to_string());
  const Index B = s.dim(0);
  const Index S = s.dim(1);
  Variable x = ln_->forward(tokens);

  Variable q_src;
  if (mode_ == QueryMode::kChannelTokens) {
    q_src = x;  // C queries -> C x C scores (quadratic in C)
  } else {
    // One learned query broadcast over batch and space (linear in C).
    Variable q = autograd::expand_dim(query_, 0, 1);  // [1, D]
    q = autograd::expand_dim(q, 0, S);                // [S, 1, D]
    q_src = autograd::expand_dim(q, 0, B);            // [B, S, 1, D]
  }

  Variable qh = split_heads(wq_->forward(q_src), heads_);
  Variable kh = split_heads(wk_->forward(x), heads_);
  Variable vh = split_heads(wv_->forward(x), heads_);
  Variable out =
      wo_->forward(merge_heads(scaled_attention(qh, kh, vh, is_frozen())));

  if (mode_ == QueryMode::kChannelTokens) {
    return autograd::mean_dim(out, 2);  // pool C attended tokens -> one
  }
  return autograd::reshape(out, tensor::Shape{B, S, dim_});
}

Variable CrossAttentionAggregator::forward_subset(
    const Variable& tokens, std::span<const Index> slots) const {
  check_subset_slots(slots, channels_, tokens.shape().dim(2));
  return forward(tokens);
}

LinearAggregator::LinearAggregator(Index dim, Index channels, Rng& rng,
                                   const std::string& name)
    : dim_(dim), channels_(channels) {
  DCHAG_CHECK(channels > 0, "aggregator needs channels > 0");
  Rng r = rng.fork(std::hash<std::string>{}(name));
  ln_ = std::make_unique<LayerNorm>(dim, name + ".ln");
  register_child(*ln_);
  combine_ = register_param(
      name + ".combine",
      tensor::Tensor(tensor::Shape{channels},
                     1.0f / static_cast<float>(channels)));
  proj_ = std::make_unique<Linear>(dim, dim, r, name + ".proj");
  register_child(*proj_);
}

Variable LinearAggregator::forward(const Variable& tokens) const {
  const auto& s = tokens.shape();
  DCHAG_CHECK(s.rank() == 4 && s.dim(2) == channels_ && s.dim(3) == dim_,
              "aggregator expects [B, S, " << channels_ << ", " << dim_
                                           << "], got " << s.to_string());
  Variable x = ln_->forward(tokens);
  // Weighted channel combination: [C] -> [C, 1] broadcasts over D.
  Variable w = autograd::reshape(combine_, tensor::Shape{channels_, 1});
  Variable mixed = autograd::sum_dim(autograd::mul(x, w), 2);  // [B, S, D]
  return proj_->forward(mixed);
}

Variable LinearAggregator::forward_subset(
    const Variable& tokens, std::span<const Index> slots) const {
  check_subset_slots(slots, channels_, tokens.shape().dim(2));
  const Index w_sub = static_cast<Index>(slots.size());
  if (w_sub == channels_) return forward(tokens);
  Variable x = ln_->forward(tokens);
  // Gather the present slots' combine weights (slot order == token order).
  std::vector<Variable> parts;
  parts.reserve(slots.size());
  for (Index s : slots) parts.push_back(autograd::slice(combine_, 0, s, 1));
  Variable w = parts.size() == 1 ? parts.front()
                                 : autograd::concat(parts, 0);  // [W]
  w = autograd::reshape(w, tensor::Shape{w_sub, 1});
  Variable mixed = autograd::sum_dim(autograd::mul(x, w), 2);  // [B, S, D]
  return proj_->forward(mixed);
}

std::unique_ptr<ChannelAggregator> make_aggregator(
    AggLayerKind kind, Index dim, Index heads, Index channels,
    QueryMode mode, Rng& rng, const std::string& name) {
  if (kind == AggLayerKind::kCrossAttention) {
    return std::make_unique<CrossAttentionAggregator>(dim, heads, channels,
                                                      mode, rng, name);
  }
  return std::make_unique<LinearAggregator>(dim, channels, rng, name);
}

}  // namespace dchag::model
