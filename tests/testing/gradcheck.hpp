// Finite-difference gradient checking for autograd ops.
#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/autograd.hpp"

namespace dchag::testing {

using autograd::Variable;
using tensor::Index;
using tensor::Tensor;

/// Compares analytic gradients against central finite differences.
///
/// `fn` maps the leaf variables to a scalar Variable. Every leaf requiring
/// grad is perturbed element-wise; returns the max relative error observed.
/// Uses a fresh graph per evaluation, so fn must be pure.
inline float gradcheck(
    const std::function<Variable(const std::vector<Variable>&)>& fn,
    std::vector<Variable> leaves, float eps = 5e-3f) {
  // Analytic pass.
  Variable loss = fn(leaves);
  loss.backward();

  const auto eval = [&]() {
    std::vector<Variable> fresh;
    fresh.reserve(leaves.size());
    for (const Variable& l : leaves)
      fresh.push_back(Variable::input(l.value()));
    return fn(fresh).value().item();
  };

  float max_rel_err = 0.0f;
  for (Variable& leaf : leaves) {
    if (!leaf.requires_grad()) continue;
    Tensor& v = leaf.mutable_value();
    const Tensor& g = leaf.grad();
    for (Index i = 0; i < v.numel(); ++i) {
      const float orig = v.data()[i];
      v.data()[i] = orig + eps;
      const float up = eval();
      v.data()[i] = orig - eps;
      const float down = eval();
      v.data()[i] = orig;
      const float numeric = (up - down) / (2.0f * eps);
      const float analytic = g.defined() ? g.data()[i] : 0.0f;
      const float denom =
          std::max({std::abs(numeric), std::abs(analytic), 1e-2f});
      max_rel_err =
          std::max(max_rel_err, std::abs(numeric - analytic) / denom);
    }
  }
  return max_rel_err;
}

}  // namespace dchag::testing
