#include "hw/comm_model.hpp"

#include <algorithm>

namespace dchag::hw {

double CommCostModel::effective_bandwidth_gbs(int group_size,
                                              int ranks_per_node) const {
  DCHAG_CHECK(group_size >= 1 && ranks_per_node >= 1,
              "invalid group placement");
  if (group_size <= ranks_per_node) return machine_.intra_node.bandwidth_gbs;
  // Spanning nodes: colocated group members share the node NIC budget.
  const double share =
      machine_.inter_node_per_node.bandwidth_gbs / ranks_per_node;
  return std::min(machine_.intra_node.bandwidth_gbs, share);
}

double CommCostModel::effective_latency_s(int group_size,
                                          int ranks_per_node) const {
  return group_size <= ranks_per_node ? machine_.intra_node.latency_s
                                      : machine_.inter_node_per_node.latency_s;
}

double CommCostModel::all_reduce_s(double bytes, int group_size,
                                   int ranks_per_node) const {
  if (group_size <= 1 || bytes <= 0) return 0.0;
  const double p = group_size;
  const double bw = effective_bandwidth_gbs(group_size, ranks_per_node) * 1e9;
  const double alpha = effective_latency_s(group_size, ranks_per_node);
  // Ring: reduce-scatter + all-gather, 2(P-1) steps moving bytes/P each.
  return 2.0 * (p - 1.0) * alpha + 2.0 * (p - 1.0) / p * bytes / bw;
}

double CommCostModel::all_gather_s(double recv_bytes_total, int group_size,
                                   int ranks_per_node) const {
  if (group_size <= 1 || recv_bytes_total <= 0) return 0.0;
  const double p = group_size;
  const double bw = effective_bandwidth_gbs(group_size, ranks_per_node) * 1e9;
  const double alpha = effective_latency_s(group_size, ranks_per_node);
  return (p - 1.0) * alpha + (p - 1.0) / p * recv_bytes_total / bw;
}

double CommCostModel::reduce_scatter_s(double send_bytes_total,
                                       int group_size,
                                       int ranks_per_node) const {
  // Symmetric to all_gather under the ring schedule.
  return all_gather_s(send_bytes_total, group_size, ranks_per_node);
}

GroupPlacement place_groups(int tp, int fsdp, int dp, int gpus_per_node) {
  DCHAG_CHECK(tp >= 1 && fsdp >= 1 && dp >= 1 && gpus_per_node >= 1,
              "invalid placement query");
  GroupPlacement p{};
  p.tp_ranks_per_node = std::min(tp, gpus_per_node);
  // FSDP strides over TP groups: its members on one node = how many whole
  // TP groups fit on a node (at least 1 member per node otherwise).
  const int tp_groups_per_node = std::max(1, gpus_per_node / tp);
  p.fsdp_ranks_per_node = std::min(fsdp, tp_groups_per_node);
  const int pairs_per_node = std::max(1, gpus_per_node / (tp * fsdp));
  p.dp_ranks_per_node = std::min(dp, pairs_per_node);
  return p;
}

}  // namespace dchag::hw
