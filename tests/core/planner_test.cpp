#include "core/planner.hpp"

#include <gtest/gtest.h>

namespace dchag::core {
namespace {

using hw::ModelConfig;

PlanRequest request(const char* preset, model::Index channels, int gpus) {
  PlanRequest req;
  req.cfg = ModelConfig::preset(preset);
  req.channels = channels;
  req.gpus = gpus;
  return req;
}

TEST(Planner, EnumeratesOnlyFeasiblePlans) {
  const auto plans = Planner::enumerate(request("1.7B", 512, 8));
  ASSERT_FALSE(plans.empty());
  for (const Plan& p : plans) {
    EXPECT_GE(p.batch_per_gpu, 1);
    EXPECT_LE(p.memory.total_gb(), p.dchag.enabled
                                       ? hw::MachineSpec::frontier().usable_mem_gb()
                                       : hw::MachineSpec::frontier().usable_mem_gb());
    EXPECT_EQ(p.layout.total_gpus(), 8);
  }
}

TEST(Planner, BestPlanUsesDchagForChannelHeavyWorkloads) {
  // At 512 channels on a 1.7B model the channel path dominates; the
  // planner must pick a D-CHAG configuration (paper's whole premise).
  const Plan best = Planner::best(request("1.7B", 512, 8));
  EXPECT_TRUE(best.dchag.enabled);
  EXPECT_EQ(best.dchag.kind, model::AggLayerKind::kLinear);
}

TEST(Planner, DchagBeatsEveryBaselinePlanAtScale) {
  const auto plans = Planner::enumerate(request("7B", 512, 16));
  double best_baseline = 0;
  double best_dchag = 0;
  for (const Plan& p : plans) {
    auto& slot = p.dchag.enabled ? best_dchag : best_baseline;
    slot = std::max(slot, p.throughput_per_node());
  }
  ASSERT_GT(best_dchag, 0.0);
  // Paper Fig. 16: more than 2x sustained throughput.
  EXPECT_GT(best_dchag, 2.0 * best_baseline);
}

TEST(Planner, ThrowsWhenNothingFits) {
  // 26B with 256 channels on 2 GPUs cannot fit under any strategy.
  EXPECT_THROW(Planner::best(request("26B", 256, 2)), Error);
}

TEST(Planner, RespectsDchagOptOut) {
  PlanRequest req = request("1.7B", 512, 8);
  req.allow_dchag = false;
  for (const Plan& p : Planner::enumerate(req)) {
    EXPECT_FALSE(p.dchag.enabled);
  }
}

TEST(Planner, MaxBatchCapHonoured) {
  PlanRequest req = request("1.7B", 256, 8);
  req.max_batch = 4;
  for (const Plan& p : Planner::enumerate(req)) {
    EXPECT_LE(p.batch_per_gpu, 4);
  }
}

TEST(Planner, TpNeverExceedsHeadCount) {
  PlanRequest req = request("100M", 128, 64);  // 12 heads
  for (const Plan& p : Planner::enumerate(req)) {
    EXPECT_EQ(12 % p.layout.tp, 0) << p.describe();
  }
}

TEST(Planner, DescribeMentionsStrategy) {
  const Plan best = Planner::best(request("1.7B", 512, 8));
  const std::string desc = best.describe();
  EXPECT_NE(desc.find("tp="), std::string::npos);
  EXPECT_NE(desc.find("D-CHAG"), std::string::npos);
}

TEST(Planner, EnablesOtherwiseImpossibleWorkloads) {
  // 26B/256 on 16 GPUs: at the paper's working batch the baseline cannot
  // run at all (CalibrationFig14); the planner's batch search may still
  // find a toy-batch baseline plan, but D-CHAG must dominate it by a wide
  // margin in both achievable batch and throughput — "enabling the
  // execution of extremely large models on multi-channel datasets".
  const auto plans = Planner::enumerate(request("26B", 256, 16));
  model::Index best_baseline_batch = 0;
  model::Index best_dchag_batch = 0;
  double best_baseline_tflops = 0;
  double best_dchag_tflops = 0;
  for (const Plan& p : plans) {
    if (p.dchag.enabled) {
      best_dchag_batch = std::max(best_dchag_batch, p.batch_per_gpu);
      best_dchag_tflops =
          std::max(best_dchag_tflops, p.throughput_per_node());
    } else {
      best_baseline_batch = std::max(best_baseline_batch, p.batch_per_gpu);
      best_baseline_tflops =
          std::max(best_baseline_tflops, p.throughput_per_node());
    }
  }
  ASSERT_GT(best_dchag_batch, 0);
  EXPECT_GE(best_dchag_batch, 4 * std::max<model::Index>(
                                      best_baseline_batch, 1));
  EXPECT_GT(best_dchag_tflops, 2.0 * best_baseline_tflops);
}

}  // namespace
}  // namespace dchag::core
