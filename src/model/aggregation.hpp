// Hierarchical cross-channel aggregation (paper §3.2, Fig. 3).
//
// A tree of aggregation units reduces C channel tokens to one. Each level
// partitions its inputs into groups of at most `max_group_width`; every
// group gets its own unit (own weights). With max_group_width = C the tree
// degenerates to the single-layer baseline; the paper's TreeN variants use
// N first-level units of width C/N. Cost per level is linear in the number
// of surviving tokens, which is what turns the aggregator's quadratic
// memory in C into ~C * width.
#pragma once

#include <memory>
#include <vector>

#include "model/attention.hpp"

namespace dchag::model {

/// Static structure of an aggregation tree: widths of every unit, level by
/// level. Pure function of (channels, max_group_width) — shared between
/// the executable module and the analytic hw model so both always agree.
struct TreePlan {
  std::vector<std::vector<Index>> level_widths;

  [[nodiscard]] Index num_levels() const {
    return static_cast<Index>(level_widths.size());
  }
  [[nodiscard]] Index num_units() const {
    Index n = 0;
    for (const auto& level : level_widths)
      n += static_cast<Index>(level.size());
    return n;
  }
  /// Largest single-unit width anywhere in the tree (drives peak
  /// cross-attention score memory).
  [[nodiscard]] Index max_width() const {
    Index m = 0;
    for (const auto& level : level_widths)
      for (Index w : level) m = std::max(m, w);
    return m;
  }
};

[[nodiscard]] TreePlan plan_tree(Index channels, Index max_group_width);

/// Number of first-level units for the paper's TreeN naming: Tree0/Tree1
/// mean one unit over all channels; TreeN means N units of width C/N.
[[nodiscard]] Index tree_units_to_width(Index channels, Index units);

/// Total parameters of a tree built from `plan` with `kind` units.
[[nodiscard]] Index tree_params(const ModelConfig& cfg, AggLayerKind kind,
                                const TreePlan& plan);

class AggregationTree : public ChannelAggregator {
 public:
  AggregationTree(const ModelConfig& cfg, AggLayerKind kind, Index channels,
                  Index max_group_width, Rng& rng,
                  const std::string& name = "tree");

  /// Paper naming: TreeN = N first-level units (0/1 = single unit).
  static std::unique_ptr<AggregationTree> with_units(
      const ModelConfig& cfg, AggLayerKind kind, Index channels, Index units,
      Rng& rng, const std::string& name = "tree");

  /// tokens: [B, S, C, D] -> [B, S, D].
  [[nodiscard]] Variable forward(const Variable& tokens) const override;
  /// Partial-channel path (serving a channel subset, paper §2.1): each
  /// token is routed to the unit owning its slot; units with no present
  /// slots are skipped, and the surviving group outputs propagate up the
  /// tree the same way. Because slots are sorted and groups own contiguous
  /// slot ranges, every unit's inputs stay one contiguous slice.
  [[nodiscard]] Variable forward_subset(
      const Variable& tokens, std::span<const Index> slots) const override;
  [[nodiscard]] Index width() const override { return channels_; }
  [[nodiscard]] const TreePlan& plan() const { return plan_; }

 private:
  ModelConfig cfg_;
  Index channels_;
  TreePlan plan_;
  // units_[level][group]
  std::vector<std::vector<std::unique_ptr<ChannelAggregator>>> units_;
};

}  // namespace dchag::model
