// SpmdEngine under injected rank slowness: a straggler rank (seeded
// FaultPlan) must degrade tail latency, not correctness or liveness —
// responses stay bit-identical to a quiet engine, latency percentiles
// still populate, and shutdown never deadlocks.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "serve/server.hpp"
#include "serve/spmd_engine.hpp"

namespace dchag::serve {
namespace {

namespace ops = tensor::ops;
using model::AggLayerKind;
using model::ForecastModel;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;

constexpr Index kChannels = 8;
constexpr int kRanks = 4;

SpmdEngine::RankModelFactory make_factory(const ModelConfig& cfg,
                                          comm::CommConfig comm_cfg) {
  return [&cfg, comm_cfg](comm::Communicator& comm) {
    Rng master(42);  // every rank: same master seed (D-CHAG contract)
    core::DchagOptions opts{/*tree_units=*/1, AggLayerKind::kLinear};
    return core::make_dchag_forecast(
        cfg, kChannels, comm, opts, master,
        runtime::Context::current().to_builder().comm(comm_cfg).build());
  };
}

/// Engine context carrying the straggler fault plan (installed on the
/// engine's World through Context::fault_plan).
runtime::Context straggler_context() {
  comm::FaultSpec spec;
  spec.seed = 404;
  spec.max_edge_delay_us = 50;
  spec.per_rank_delay_us = {0, 0, 800, 0};  // rank 2 is the slow one
  spec.drop_prob = 0.2;
  spec.retry_backoff_us = 40;
  return runtime::ContextBuilder()
      .fault_plan(comm::make_fault_plan(spec, kRanks))
      .build();
}

Tensor sample_batch(std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_tensor(Shape{kChannels, 16, 16});
}

TEST(SpmdFault, StragglerRankStillServesExactResultsWithTailMetrics) {
  ModelConfig cfg = ModelConfig::tiny();
  // Async overlap mode end to end: the straggler's delays land on the
  // progress threads' shadow group as well as the main collectives.
  const comm::CommConfig async_cfg{comm::CommMode::kAsync,
                                   /*pipeline_chunks=*/2};
  SpmdEngine slow(kRanks, make_factory(cfg, async_cfg), {},
                  straggler_context());
  SpmdEngine quiet(kRanks, make_factory(cfg, async_cfg));

  ServerConfig scfg;
  scfg.batcher.max_batch = 4;
  scfg.batcher.max_wait = std::chrono::microseconds(500);
  Server server(slow.inference_fn(), scfg);
  server.start();
  constexpr int kRequests = 12;
  std::vector<ResponseFuture> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request r;
    r.images = sample_batch(600 + static_cast<std::uint64_t>(i));
    futures.push_back(server.submit(std::move(r)));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor pred = futures[static_cast<std::size_t>(i)].get().pred;
    Tensor img = sample_batch(600 + static_cast<std::uint64_t>(i));
    Tensor batch1 = img.reshape(Shape{1, kChannels, 16, 16});
    Tensor expected = quiet.run(batch1, {}, 1.0f);
    // Straggling shifts time, never bits.
    ASSERT_EQ(ops::max_abs_diff(
                  pred, expected.reshape(Shape{expected.dim(1),
                                               expected.dim(2)})),
              0.0f)
        << "request " << i;
  }
  server.drain();

  const Metrics::Snapshot m = server.metrics().summary();
  EXPECT_EQ(m.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(m.failed, 0u);
  // The p99 pipeline must survive a slow rank: percentiles populated and
  // ordered, and the injected ~0.8 ms straggler stall visible in the tail.
  EXPECT_GT(m.p99_ms, 0.0);
  EXPECT_GE(m.p99_ms, m.p50_ms);
  EXPECT_GT(m.p99_ms, 0.8);
  // Engines destruct here: a deadlocked shutdown fails via ctest timeout.
}

TEST(SpmdFault, EngineShutdownWithFaultsAndNoTrafficDoesNotDeadlock) {
  ModelConfig cfg = ModelConfig::tiny();
  SpmdEngine engine(kRanks,
                    make_factory(cfg, comm::CommConfig{comm::CommMode::kAsync,
                                                       /*pipeline_chunks=*/2}),
                    {}, straggler_context());
  // Construct-then-destruct, zero jobs: the world must come down clean.
}

}  // namespace
}  // namespace dchag::serve
