// Figure 8: distributing only the tokenization across TP ranks (paper
// §3.1). Bars per configuration: baseline tokenization+aggregation (blue),
// baseline tokenization alone (red), distributed tokenization alone
// (green), distributed tokenization + the full-token AllGather feeding the
// monolithic aggregator (yellow). The AllGather negates the win at 512
// channels and leaves only modest gains at 1024.
#include "bench_util.hpp"
#include "hw/memory_model.hpp"

namespace {
using namespace dchag;
using namespace dchag::hw;

double tok_only(const MemoryBreakdown& m) {
  return m.tokenizer_state_gb + m.tokenizer_act_gb + m.input_act_gb;
}
double tok_agg(const MemoryBreakdown& m) {
  return tok_only(m) + m.aggregation_state_gb + m.aggregation_act_gb +
         m.gather_act_gb;
}
}  // namespace

int main() {
  bench::header("Figure 8",
                "Distributed tokenization alone (1.7B, batch 21)");
  const ModelConfig cfg = ModelConfig::preset("1.7B");
  const MachineSpec frontier = MachineSpec::frontier();
  bench::ShapeChecks checks;

  std::printf("%6s %4s | %14s %14s | %14s %14s | %10s\n", "ch", "tp",
              "base tok+agg", "base tok", "dist tok", "dist tok+agg",
              "total Δ%%");
  double delta512 = 0;
  double delta1024 = 0;
  for (Index channels : {512, 1024}) {
    Workload w{21, channels, true};
    const int tp =
        min_feasible_tp(cfg, w, DchagSpec::off(), frontier, 16);
    const auto base = estimate_memory(cfg, w, {tp, 1, 1}, DchagSpec::off());
    const auto dist =
        estimate_memory_distributed_tokenization(cfg, w, {tp, 1, 1});
    const double delta =
        100.0 * (base.total_gb() - dist.total_gb()) / base.total_gb();
    std::printf("%6lld %4d | %14.1f %14.1f | %14.1f %14.1f | %+9.1f%%\n",
                static_cast<long long>(channels), tp, tok_agg(base),
                tok_only(base), tok_only(dist), tok_agg(dist), delta);
    (channels == 512 ? delta512 : delta1024) = delta;

    checks.expect(tok_only(dist) < tok_only(base),
                  std::to_string(channels) +
                      "ch: distributed tokenization alone saves memory "
                      "(red vs green bars)");
    checks.expect(tok_agg(dist) > 0.8 * tok_agg(base),
                  std::to_string(channels) +
                      "ch: the AllGather claws back most of the win "
                      "(blue vs yellow bars)");
  }
  checks.expect(delta512 <= 1.0,
                "512ch: no net improvement (paper: 'a drop in performance')");
  checks.expect(delta1024 > delta512,
                "1024ch: only modest improvements, better than 512ch");
  return checks.report();
}
