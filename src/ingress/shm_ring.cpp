#include "ingress/shm_ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <random>

#include "tensor/check.hpp"

namespace dchag::ingress {

namespace {
constexpr std::uint64_t kMagic = 0x44434841474E4731ull;  // "DCHAGNG1"
constexpr std::uint32_t kVersion = 1;
}  // namespace

// The control block at the start of the segment. Cache-line alignment
// keeps the producer- and consumer-owned counters off each other's lines.
struct alignas(64) ShmRing::Header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t slots;
  std::uint32_t max_payload_floats;
  std::uint32_t req_slot_bytes;
  std::uint32_t resp_slot_bytes;
  alignas(64) std::atomic<std::uint64_t> heartbeat;
  alignas(64) std::atomic<std::uint32_t> state;
  std::atomic<std::uint32_t> control;
  alignas(64) std::atomic<std::uint64_t> req_head;   // dispatcher-owned
  alignas(64) std::atomic<std::uint64_t> req_tail;   // worker-owned
  alignas(64) std::atomic<std::uint64_t> resp_head;  // worker-owned
  alignas(64) std::atomic<std::uint64_t> resp_tail;  // dispatcher-owned
};

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "shm rings need lock-free 64-bit atomics");

std::size_t ShmRing::segment_bytes(const RingConfig& cfg) {
  const std::size_t req_slot =
      sizeof(RingRequest) + std::size_t(cfg.max_payload_floats) * 4;
  const std::size_t resp_slot =
      sizeof(RingResponse) + std::size_t(cfg.max_payload_floats) * 4;
  return sizeof(Header) + cfg.slots * (req_slot + resp_slot);
}

ShmRing::Header* ShmRing::hdr() const {
  return static_cast<Header*>(map_);
}

std::uint8_t* ShmRing::req_slot(std::uint64_t seq) const {
  Header* h = hdr();
  std::uint8_t* base =
      static_cast<std::uint8_t*>(map_) + sizeof(Header);
  return base + (seq % h->slots) * h->req_slot_bytes;
}

std::uint8_t* ShmRing::resp_slot(std::uint64_t seq) const {
  Header* h = hdr();
  std::uint8_t* base = static_cast<std::uint8_t*>(map_) + sizeof(Header) +
                       std::size_t(h->slots) * h->req_slot_bytes;
  return base + (seq % h->slots) * h->resp_slot_bytes;
}

ShmRing ShmRing::create(const std::string& name, RingConfig cfg) {
  DCHAG_CHECK(cfg.slots >= 1 && cfg.max_payload_floats >= 1,
              "ShmRing needs >= 1 slot and a nonzero payload budget");
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  DCHAG_CHECK(fd >= 0, "shm_open(" << name << ") failed: "
                                   << std::strerror(errno));
  const std::size_t bytes = segment_bytes(cfg);
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    const int err = errno;
    ::close(fd);
    ::shm_unlink(name.c_str());
    DCHAG_FAIL("ftruncate(" << name << ", " << bytes
                            << ") failed: " << std::strerror(err));
  }
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (map == MAP_FAILED) {
    ::shm_unlink(name.c_str());
    DCHAG_FAIL("mmap(" << name << ") failed: " << std::strerror(errno));
  }

  ShmRing ring;
  ring.name_ = name;
  ring.map_ = map;
  ring.map_bytes_ = bytes;
  ring.creator_ = true;

  Header* h = new (map) Header();
  h->version = kVersion;
  h->slots = cfg.slots;
  h->max_payload_floats = cfg.max_payload_floats;
  h->req_slot_bytes = static_cast<std::uint32_t>(
      sizeof(RingRequest) + std::size_t(cfg.max_payload_floats) * 4);
  h->resp_slot_bytes = static_cast<std::uint32_t>(
      sizeof(RingResponse) + std::size_t(cfg.max_payload_floats) * 4);
  h->heartbeat.store(0, std::memory_order_relaxed);
  h->state.store(static_cast<std::uint32_t>(WorkerState::kStarting),
                 std::memory_order_relaxed);
  h->control.store(static_cast<std::uint32_t>(ControlWord::kRun),
                   std::memory_order_relaxed);
  h->req_head.store(0, std::memory_order_relaxed);
  h->req_tail.store(0, std::memory_order_relaxed);
  h->resp_head.store(0, std::memory_order_relaxed);
  h->resp_tail.store(0, std::memory_order_relaxed);
  // Publish the magic last: an opener that sees it sees a full header.
  std::atomic_thread_fence(std::memory_order_release);
  h->magic = kMagic;
  return ring;
}

ShmRing ShmRing::open(const std::string& name) {
  const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
  DCHAG_CHECK(fd >= 0, "shm_open(" << name << ") failed: "
                                   << std::strerror(errno));
  struct stat st {};
  if (::fstat(fd, &st) != 0 || st.st_size < off_t(sizeof(Header))) {
    ::close(fd);
    DCHAG_FAIL("shm segment " << name << " truncated or unreadable");
  }
  const std::size_t bytes = static_cast<std::size_t>(st.st_size);
  void* map =
      ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  DCHAG_CHECK(map != MAP_FAILED,
              "mmap(" << name << ") failed: " << std::strerror(errno));

  ShmRing ring;
  ring.name_ = name;
  ring.map_ = map;
  ring.map_bytes_ = bytes;

  Header* h = ring.hdr();
  DCHAG_CHECK(h->magic == kMagic && h->version == kVersion,
              "shm segment " << name << " has wrong magic/version");
  std::atomic_thread_fence(std::memory_order_acquire);
  DCHAG_CHECK(segment_bytes(RingConfig{h->slots, h->max_payload_floats}) <=
                  bytes,
              "shm segment " << name << " smaller than its own geometry");
  return ring;
}

ShmRing::ShmRing(ShmRing&& other) noexcept { *this = std::move(other); }

ShmRing& ShmRing::operator=(ShmRing&& other) noexcept {
  if (this != &other) {
    if (map_ != nullptr) ::munmap(map_, map_bytes_);
    name_ = std::move(other.name_);
    map_ = other.map_;
    map_bytes_ = other.map_bytes_;
    creator_ = other.creator_;
    other.map_ = nullptr;
    other.map_bytes_ = 0;
    other.creator_ = false;
  }
  return *this;
}

ShmRing::~ShmRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void ShmRing::unlink() {
  if (!name_.empty()) ::shm_unlink(name_.c_str());
}

bool ShmRing::try_push_request(const RingRequest& hdr_in,
                               const float* payload,
                               std::size_t n_payload) {
  Header* h = hdr();
  DCHAG_CHECK(n_payload <= h->max_payload_floats,
              "request payload " << n_payload << " floats exceeds slot "
                                 << "budget " << h->max_payload_floats);
  const std::uint64_t head = h->req_head.load(std::memory_order_relaxed);
  const std::uint64_t tail = h->req_tail.load(std::memory_order_acquire);
  if (head - tail >= h->slots) return false;  // full
  std::uint8_t* slot = req_slot(head);
  std::memcpy(slot, &hdr_in, sizeof(RingRequest));
  if (n_payload > 0)
    std::memcpy(slot + sizeof(RingRequest), payload, n_payload * 4);
  h->req_head.store(head + 1, std::memory_order_release);
  return true;
}

bool ShmRing::try_pop_request(RingRequest* out,
                              std::vector<float>* payload) {
  Header* h = hdr();
  const std::uint64_t tail = h->req_tail.load(std::memory_order_relaxed);
  const std::uint64_t head = h->req_head.load(std::memory_order_acquire);
  if (tail == head) return false;  // empty
  const std::uint8_t* slot = req_slot(tail);
  std::memcpy(out, slot, sizeof(RingRequest));
  const std::size_t n = static_cast<std::size_t>(out->c) *
                        static_cast<std::size_t>(out->h) *
                        static_cast<std::size_t>(out->w);
  DCHAG_CHECK(n <= h->max_payload_floats,
              "ring request claims " << n << " floats > slot budget");
  payload->resize(n);
  if (n > 0) std::memcpy(payload->data(), slot + sizeof(RingRequest), n * 4);
  h->req_tail.store(tail + 1, std::memory_order_release);
  return true;
}

bool ShmRing::try_push_response(const RingResponse& hdr_in,
                                const float* payload,
                                const char* error_bytes) {
  Header* h = hdr();
  const std::uint64_t head = h->resp_head.load(std::memory_order_relaxed);
  const std::uint64_t tail = h->resp_tail.load(std::memory_order_acquire);
  if (head - tail >= h->slots) return false;  // full
  std::uint8_t* slot = resp_slot(head);
  std::memcpy(slot, &hdr_in, sizeof(RingResponse));
  if (hdr_in.status == 0) {
    const std::size_t n = static_cast<std::size_t>(hdr_in.s) *
                          static_cast<std::size_t>(hdr_in.d);
    DCHAG_CHECK(n <= h->max_payload_floats,
                "response payload " << n << " floats exceeds slot budget");
    if (n > 0) std::memcpy(slot + sizeof(RingResponse), payload, n * 4);
  } else if (hdr_in.error_bytes > 0) {
    DCHAG_CHECK(hdr_in.error_bytes <= h->max_payload_floats * 4,
                "error message exceeds slot budget");
    std::memcpy(slot + sizeof(RingResponse), error_bytes,
                hdr_in.error_bytes);
  }
  h->resp_head.store(head + 1, std::memory_order_release);
  return true;
}

bool ShmRing::try_pop_response(RingResponse* out,
                               std::vector<float>* payload,
                               std::string* error) {
  Header* h = hdr();
  const std::uint64_t tail = h->resp_tail.load(std::memory_order_relaxed);
  const std::uint64_t head = h->resp_head.load(std::memory_order_acquire);
  if (tail == head) return false;  // empty
  const std::uint8_t* slot = resp_slot(tail);
  std::memcpy(out, slot, sizeof(RingResponse));
  if (out->status == 0) {
    const std::size_t n = static_cast<std::size_t>(out->s) *
                          static_cast<std::size_t>(out->d);
    DCHAG_CHECK(n <= h->max_payload_floats,
                "ring response claims " << n << " floats > slot budget");
    payload->resize(n);
    if (n > 0)
      std::memcpy(payload->data(), slot + sizeof(RingResponse), n * 4);
  } else {
    const std::size_t n =
        std::min<std::size_t>(out->error_bytes, h->max_payload_floats * 4);
    error->assign(reinterpret_cast<const char*>(slot + sizeof(RingResponse)),
                  n);
  }
  h->resp_tail.store(tail + 1, std::memory_order_release);
  return true;
}

void ShmRing::beat() {
  hdr()->heartbeat.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t ShmRing::heartbeat() const {
  return hdr()->heartbeat.load(std::memory_order_relaxed);
}

void ShmRing::set_state(WorkerState s) {
  hdr()->state.store(static_cast<std::uint32_t>(s),
                     std::memory_order_release);
}

WorkerState ShmRing::state() const {
  return static_cast<WorkerState>(
      hdr()->state.load(std::memory_order_acquire));
}

void ShmRing::set_control(ControlWord c) {
  hdr()->control.store(static_cast<std::uint32_t>(c),
                       std::memory_order_release);
}

ControlWord ShmRing::control() const {
  return static_cast<ControlWord>(
      hdr()->control.load(std::memory_order_acquire));
}

std::size_t ShmRing::request_backlog() const {
  Header* h = hdr();
  return static_cast<std::size_t>(
      h->req_head.load(std::memory_order_acquire) -
      h->req_tail.load(std::memory_order_acquire));
}

bool ShmRing::quiescent() const {
  Header* h = hdr();
  return h->req_head.load(std::memory_order_acquire) ==
             h->req_tail.load(std::memory_order_acquire) &&
         h->resp_head.load(std::memory_order_acquire) ==
             h->resp_tail.load(std::memory_order_acquire);
}

std::uint32_t ShmRing::slots() const { return hdr()->slots; }

std::uint32_t ShmRing::max_payload_floats() const {
  return hdr()->max_payload_floats;
}

std::string make_ring_name() {
  static std::atomic<std::uint64_t> seq{0};
  static const std::uint64_t salt = [] {
    std::random_device rd;
    return (std::uint64_t(rd()) << 32) ^ rd();
  }();
  char buf[96];
  std::snprintf(buf, sizeof(buf), "/dchag_ing_%d_%llu_%llx",
                static_cast<int>(::getpid()),
                static_cast<unsigned long long>(
                    seq.fetch_add(1, std::memory_order_relaxed)),
                static_cast<unsigned long long>(salt & 0xffffffffull));
  return buf;
}

}  // namespace dchag::ingress
