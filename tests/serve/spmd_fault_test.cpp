// SpmdEngine under injected rank slowness: a straggler rank (seeded
// FaultPlan) must degrade tail latency, not correctness or liveness —
// responses stay bit-identical to a quiet engine, latency percentiles
// still populate, and shutdown never deadlocks.
#include <gtest/gtest.h>

#include "core/dchag_frontend.hpp"
#include "serve/server.hpp"
#include "serve/spmd_engine.hpp"

namespace dchag::serve {
namespace {

namespace ops = tensor::ops;
using model::AggLayerKind;
using model::ForecastModel;
using model::ModelConfig;
using tensor::Rng;
using tensor::Shape;

constexpr Index kChannels = 8;
constexpr int kRanks = 4;

SpmdEngine::RankModelFactory make_factory(const ModelConfig& cfg,
                                          comm::CommConfig comm_cfg) {
  return [&cfg, comm_cfg](comm::Communicator& comm) {
    Rng master(42);  // every rank: same master seed (D-CHAG contract)
    core::DchagOptions opts{/*tree_units=*/1, AggLayerKind::kLinear};
    return core::make_dchag_forecast(
        cfg, kChannels, comm, opts, master,
        runtime::Context::current().to_builder().comm(comm_cfg).build());
  };
}

/// Engine context carrying the straggler fault plan (installed on the
/// engine's World through Context::fault_plan).
runtime::Context straggler_context() {
  comm::FaultSpec spec;
  spec.seed = 404;
  spec.max_edge_delay_us = 50;
  spec.per_rank_delay_us = {0, 0, 800, 0};  // rank 2 is the slow one
  spec.drop_prob = 0.2;
  spec.retry_backoff_us = 40;
  return runtime::ContextBuilder()
      .fault_plan(comm::make_fault_plan(spec, kRanks))
      .build();
}

Tensor sample_batch(std::uint64_t seed) {
  Rng rng(seed);
  return rng.normal_tensor(Shape{kChannels, 16, 16});
}

TEST(SpmdFault, StragglerRankStillServesExactResultsWithTailMetrics) {
  ModelConfig cfg = ModelConfig::tiny();
  // Async overlap mode end to end: the straggler's delays land on the
  // progress threads' shadow group as well as the main collectives.
  const comm::CommConfig async_cfg{comm::CommMode::kAsync,
                                   /*pipeline_chunks=*/2};
  SpmdEngine slow(kRanks, make_factory(cfg, async_cfg), {},
                  straggler_context());
  SpmdEngine quiet(kRanks, make_factory(cfg, async_cfg));

  ServerConfig scfg;
  scfg.batcher.max_batch = 4;
  scfg.batcher.max_wait = std::chrono::microseconds(500);
  Server server(slow.inference_fn(), scfg);
  server.start();
  constexpr int kRequests = 12;
  std::vector<ResponseFuture> futures;
  futures.reserve(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    Request r;
    r.images = sample_batch(600 + static_cast<std::uint64_t>(i));
    futures.push_back(server.submit(std::move(r)));
  }
  for (int i = 0; i < kRequests; ++i) {
    Tensor pred = futures[static_cast<std::size_t>(i)].get().pred;
    Tensor img = sample_batch(600 + static_cast<std::uint64_t>(i));
    Tensor batch1 = img.reshape(Shape{1, kChannels, 16, 16});
    Tensor expected = quiet.run(batch1, {}, 1.0f);
    // Straggling shifts time, never bits.
    ASSERT_EQ(ops::max_abs_diff(
                  pred, expected.reshape(Shape{expected.dim(1),
                                               expected.dim(2)})),
              0.0f)
        << "request " << i;
  }
  server.drain();

  const Metrics::Snapshot m = server.metrics().summary();
  EXPECT_EQ(m.requests, static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(m.failed, 0u);
  // The p99 pipeline must survive a slow rank: percentiles populated and
  // ordered, and the injected ~0.8 ms straggler stall visible in the tail.
  EXPECT_GT(m.p99_ms, 0.0);
  EXPECT_GE(m.p99_ms, m.p50_ms);
  EXPECT_GT(m.p99_ms, 0.8);
  // Engines destruct here: a deadlocked shutdown fails via ctest timeout.
}

TEST(SpmdFault, HedgedDispatchFiresOnStragglersWithoutFakingARecovery) {
  ModelConfig cfg = ModelConfig::tiny();
  // A much harsher straggler than the tail-latency test: every job takes
  // >> 1 ms, so a 1 ms hedge budget must trip at least once.
  comm::FaultSpec spec;
  spec.seed = 404;
  spec.per_rank_delay_us = {0, 0, 3000, 0};
  const runtime::Context ctx =
      runtime::ContextBuilder()
          .fault_plan(comm::make_fault_plan(spec, kRanks))
          .build();
  SpmdEngineConfig ecfg;
  ecfg.metrics = std::make_shared<Metrics>();
  ecfg.hedge_timeout = std::chrono::milliseconds(1);
  SpmdEngine slow(kRanks, make_factory(cfg, {}), ecfg, ctx);
  SpmdEngine quiet(kRanks, make_factory(cfg, {}));

  for (int i = 0; i < 4; ++i) {
    Tensor batch = sample_batch(700 + static_cast<std::uint64_t>(i))
                       .reshape(Shape{1, kChannels, 16, 16});
    // Hedging re-runs the same deterministic job: still bit-exact.
    ASSERT_EQ(ops::max_abs_diff(slow.run(batch, {}, 1.0f),
                                quiet.run(batch, {}, 1.0f)),
              0.0f)
        << "request " << i;
  }
  const Metrics::Snapshot m = ecfg.metrics->summary();
  EXPECT_GE(m.hedged_dispatches, 1u);
  // Stragglers are slowness, not failure: no recovery machinery fired.
  EXPECT_EQ(m.recoveries, 0u);
  EXPECT_EQ(m.mean_recovery_ms, 0.0);
  EXPECT_EQ(m.degraded_responses, 0u);
}

TEST(SpmdFault, RankDeathServesDegradedThenHealsBitExact) {
  ModelConfig cfg = ModelConfig::tiny();
  comm::FaultSpec spec;
  spec.seed = 11;
  comm::RankDeathEvent death;
  death.rank = 2;
  death.at_op = 2;
  spec.deaths.push_back(death);
  const auto plan = comm::make_fault_plan(spec, kRanks);
  const runtime::Context ctx =
      runtime::ContextBuilder().fault_plan(plan).build();
  SpmdEngineConfig ecfg;
  ecfg.metrics = std::make_shared<Metrics>();
  ecfg.checkpoint_dir = ::testing::TempDir();  // exercise shard reload
  SpmdEngine engine(kRanks, make_factory(cfg, {}), ecfg, ctx);
  SpmdEngine oracle(kRanks, make_factory(cfg, {}));

  const Tensor batch =
      sample_batch(900).reshape(Shape{1, kChannels, 16, 16});
  const Tensor full = oracle.run(batch, {}, 1.0f);
  // Rank 2's channels are lost while degraded; the healthy oracle's
  // answer for the surviving subset is the degraded ground truth.
  const Index c_local = kChannels / kRanks;
  std::vector<Index> surviving;
  std::vector<Tensor> slabs;
  for (int slot : {0, 1, 3}) {
    for (Index c = 0; c < c_local; ++c)
      surviving.push_back(static_cast<Index>(slot) * c_local + c);
    slabs.push_back(ops::slice(batch, 1,
                               static_cast<Index>(slot) * c_local, c_local));
  }
  const Tensor degraded_batch = ops::concat(slabs, 1);
  const Tensor degraded = oracle.run(degraded_batch, surviving, 1.0f);

  // Drive jobs until the death fires; every answer is either the healthy
  // result (before the event / after the heal) or the degraded one.
  bool saw_degraded = false;
  for (int i = 0; i < 8; ++i) {
    const Tensor got = engine.run(batch, {}, 1.0f);
    const bool is_full = ops::max_abs_diff(got, full) == 0.0f;
    const bool is_degraded = ops::max_abs_diff(got, degraded) == 0.0f;
    ASSERT_TRUE(is_full || is_degraded)
        << "job " << i << " matches neither | repro: " << plan->describe();
    saw_degraded = saw_degraded || is_degraded;
  }
  ASSERT_TRUE(saw_degraded) << "death never fired | " << plan->describe();

  engine.wait_recovered();
  // The respawned rank rebuilt from the factory + checkpoint shard: the
  // healed world answers bit-exactly like a never-failed one.
  ASSERT_EQ(ops::max_abs_diff(engine.run(batch, {}, 1.0f), full), 0.0f)
      << plan->describe();
  const Metrics::Snapshot m = ecfg.metrics->summary();
  EXPECT_EQ(m.recoveries, 1u);
  EXPECT_GT(m.mean_recovery_ms, 0.0);
  EXPECT_GE(m.degraded_responses, 1u);
  for (int r = 0; r < kRanks; ++r)
    std::remove((ecfg.checkpoint_dir + "/rank_" + std::to_string(r) +
                 ".ckpt")
                    .c_str());
}

TEST(SpmdFault, DegradedSubsetRequestsServeTheSurvivingIntersection) {
  ModelConfig cfg = ModelConfig::tiny();
  comm::FaultSpec spec;
  spec.seed = 12;
  comm::RankDeathEvent death;
  death.rank = 1;
  death.at_op = 1;
  spec.deaths.push_back(death);
  const runtime::Context ctx =
      runtime::ContextBuilder()
          .fault_plan(comm::make_fault_plan(spec, kRanks))
          .build();
  SpmdEngineConfig ecfg;
  ecfg.metrics = std::make_shared<Metrics>();
  ecfg.checkpoint_dir = ::testing::TempDir();
  SpmdEngine engine(kRanks, make_factory(cfg, {}), ecfg, ctx);
  SpmdEngine oracle(kRanks, make_factory(cfg, {}));
  // Sabotage the heal: with rank 1's shard gone the respawn cannot
  // reload, so the world stays degraded deterministically (the racy
  // alternative — asserting mid-heal — would flake) and the heal error
  // surfaces on wait_recovered() instead of killing the engine.
  for (int r = 0; r < kRanks; ++r)
    std::remove((ecfg.checkpoint_dir + "/rank_" + std::to_string(r) +
                 ".ckpt")
                    .c_str());

  const Tensor batch =
      sample_batch(901).reshape(Shape{1, kChannels, 16, 16});
  // Kill rank 1 (channels {2,3}) by running full jobs until degraded.
  const Index c_local = kChannels / kRanks;
  std::vector<Index> surviving;
  std::vector<Tensor> slabs;
  for (int slot : {0, 2, 3}) {
    for (Index c = 0; c < c_local; ++c)
      surviving.push_back(static_cast<Index>(slot) * c_local + c);
    slabs.push_back(ops::slice(batch, 1,
                               static_cast<Index>(slot) * c_local, c_local));
  }
  const Tensor full = oracle.run(batch, {}, 1.0f);
  const Tensor degraded =
      oracle.run(ops::concat(slabs, 1), surviving, 1.0f);
  for (int i = 0; i < 8; ++i) {
    const Tensor got = engine.run(batch, {}, 1.0f);
    if (ops::max_abs_diff(got, degraded) == 0.0f) break;
    ASSERT_EQ(ops::max_abs_diff(got, full), 0.0f) << "job " << i;
  }
  ASSERT_GE(ecfg.metrics->summary().degraded_responses, 1u);
  EXPECT_THROW(engine.wait_recovered(), Error);  // the sabotaged heal

  // A subset request straddling dead channels {2,3}: the engine serves
  // the surviving intersection {1, 4}, matching the healthy oracle's
  // answer for exactly that narrower subset.
  const std::vector<Index> request{1, 2, 4};
  std::vector<Tensor> req_slabs;
  for (Index c : request) req_slabs.push_back(ops::slice(batch, 1, c, 1));
  const Tensor req_img = ops::concat(req_slabs, 1);
  const std::vector<Index> inter{1, 4};
  std::vector<Tensor> inter_slabs;
  for (Index c : inter) inter_slabs.push_back(ops::slice(batch, 1, c, 1));
  const Tensor expect_inter =
      oracle.run(ops::concat(inter_slabs, 1), inter, 1.0f);
  ASSERT_EQ(
      ops::max_abs_diff(engine.run(req_img, request, 1.0f), expect_inter),
      0.0f);
  // A request owned entirely by the dead rank cannot be served degraded.
  const std::vector<Index> dead_only{2, 3};
  std::vector<Tensor> dead_slabs;
  for (Index c : dead_only) dead_slabs.push_back(ops::slice(batch, 1, c, 1));
  const Tensor dead_img = ops::concat(dead_slabs, 1);
  EXPECT_THROW((void)engine.run(dead_img, dead_only, 1.0f), Error);
}

TEST(SpmdFault, EngineShutdownWithFaultsAndNoTrafficDoesNotDeadlock) {
  ModelConfig cfg = ModelConfig::tiny();
  SpmdEngine engine(kRanks,
                    make_factory(cfg, comm::CommConfig{comm::CommMode::kAsync,
                                                       /*pipeline_chunks=*/2}),
                    {}, straggler_context());
  // Construct-then-destruct, zero jobs: the world must come down clean.
}

}  // namespace
}  // namespace dchag::serve
