// Deterministic fault injection for the SPMD runtime.
//
// A FaultPlan is a pure function of (seed, group size): per-edge link
// latencies, per-rank straggler delays, drop-with-retry decisions, and
// completion jitter are all drawn from hashes of (rank, collective kind,
// per-rank op sequence number). Because every rank of a symmetric SPMD
// program advances its op counter identically, the injected schedule is
// reproducible run to run — timing faults perturb TIMING only, never
// data, so any result difference under a plan is a real synchronization
// bug.
//
// On top of timing, a plan can carry STRUCTURAL events: seeded rank
// deaths ("kill world rank r at its at_op-th collective") and link
// partitions ("sever island {A} from the rest for k collectives").
// Structural events surface as a typed RankFailure (communicator.hpp) on
// every affected handle instead of a hang; survivors regroup with
// Communicator::split_survivors. Every RankFailure message embeds the
// plan's seed, the event index, and the full schedule string
// (FaultPlan::describe), so a failing seeded schedule reproduces from
// the ctest log alone.
//
// Install a plan on any World with World::set_fault_plan(), or use the
// FaultyWorld convenience wrapper. Plans propagate through split() into
// child groups (including the shadow groups AsyncCommunicator creates),
// so injected schedules are adversarial end to end.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "comm/communicator.hpp"

namespace dchag::comm {

/// Kill world rank `rank` when any of its communicator handles issues its
/// `at_op`-th collective (first op with seq >= at_op; each handle counts
/// its own ops). The death fires once per plan — a respawned rank's fresh
/// handles, created after the event, are immune to it.
struct RankDeathEvent {
  int rank = 0;
  std::uint64_t at_op = 0;
};

/// Sever `island` from the complement for collectives with seq in
/// [at_op, at_op + duration_ops). Any group whose membership spans both
/// sides is broken when it issues a collective inside the window; the
/// MINORITY side (ties: the side not containing world rank 0) is marked
/// dead so the majority can regroup and keep serving. A partition whose
/// window passes with no spanning collective is harmless by design.
struct PartitionEvent {
  std::uint64_t at_op = 0;
  std::uint64_t duration_ops = 1;
  std::vector<int> island;  ///< world ranks of one side (proper subset)
};

/// Knobs for one injection plan. All delays are microseconds; zero
/// disables that fault class.
struct FaultSpec {
  std::uint64_t seed = 0;
  /// Per-edge link latency drawn uniformly in [min, max] at plan build;
  /// a rank's collectives stall for its slowest incoming edge.
  std::uint32_t min_edge_delay_us = 0;
  std::uint32_t max_edge_delay_us = 0;
  /// Probability that a rank's contribution to a collective is "dropped"
  /// and must be resent; each retry costs retry_backoff_us.
  double drop_prob = 0.0;
  int max_retries = 3;
  std::uint32_t retry_backoff_us = 50;
  /// Extra delay added AFTER a collective completes, drawn per op in
  /// [0, max]: async completions arrive out of the issue-time pattern,
  /// which is what shakes out wait()-ordering bugs.
  std::uint32_t max_completion_jitter_us = 0;
  /// Per-rank straggler delay (index = rank; shorter vectors pad with 0).
  /// The straightforward way to model one slow GCD / preempted worker.
  std::vector<std::uint32_t> per_rank_delay_us;
  /// Structural events. Event indices (for RankFailure repro strings)
  /// number deaths first, then partitions.
  std::vector<RankDeathEvent> deaths;
  std::vector<PartitionEvent> partitions;
};

class FaultPlan {
 public:
  FaultPlan(FaultSpec spec, int size);

  struct Injection {
    std::uint32_t pre_delay_us = 0;   ///< before the collective's data moves
    int drops = 0;                    ///< resend attempts before success
    std::uint32_t retry_backoff_us = 0;
    std::uint32_t post_jitter_us = 0;  ///< after completion, before return
  };

  /// Deterministic injection for the `seq`-th collective of kind `kind`
  /// issued by `rank`. Also bumps the plan's observability counters.
  [[nodiscard]] Injection draw(int rank, CollectiveKind kind,
                               std::uint64_t seq) const;

  [[nodiscard]] const FaultSpec& spec() const { return spec_; }
  [[nodiscard]] int size() const { return size_; }
  [[nodiscard]] std::uint32_t edge_delay_us(int src, int dst) const;

  // --- Structural events -----------------------------------------------------

  [[nodiscard]] bool has_events() const {
    return !spec_.deaths.empty() || !spec_.partitions.empty();
  }
  [[nodiscard]] int event_count() const {
    return static_cast<int>(spec_.deaths.size() + spec_.partitions.size());
  }

  /// Index of the death event hitting `world_rank` at op `seq` (first op
  /// at or past its at_op), or -1. Firing-once semantics live in the
  /// world's FailureLedger, not here — the plan is a pure function.
  [[nodiscard]] int death_event(int world_rank, std::uint64_t seq) const;

  /// Index of the partition event broken by a group with membership
  /// `world_ranks` issuing op `seq`, or -1. On a hit, `*dead` receives
  /// the world ranks of the losing (minority) side.
  [[nodiscard]] int partition_event(std::span<const int> world_ranks,
                                    std::uint64_t seq,
                                    std::vector<int>* dead) const;

  /// One-line schedule string: seed, size, every timing knob and event.
  /// Pasteable into a FaultSpec for one-command repro of a failure.
  [[nodiscard]] std::string describe() const;

  // Observability: what the plan actually injected so far.
  [[nodiscard]] std::uint64_t injected_delay_us() const {
    return injected_delay_us_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injected_retries() const {
    return injected_retries_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t injections() const {
    return injections_.load(std::memory_order_relaxed);
  }
  void reset_counters() const {
    injected_delay_us_.store(0, std::memory_order_relaxed);
    injected_retries_.store(0, std::memory_order_relaxed);
    injections_.store(0, std::memory_order_relaxed);
  }

 private:
  FaultSpec spec_;
  int size_;
  std::vector<std::uint32_t> edge_delay_us_;  ///< size x size, row = src
  std::vector<std::uint32_t> ingress_us_;     ///< max incoming edge per rank

  mutable std::atomic<std::uint64_t> injected_delay_us_{0};
  mutable std::atomic<std::uint64_t> injected_retries_{0};
  mutable std::atomic<std::uint64_t> injections_{0};
};

[[nodiscard]] std::shared_ptr<const FaultPlan> make_fault_plan(FaultSpec spec,
                                                               int size);

/// A World with a seeded FaultPlan pre-installed: the comm test double.
/// Drop-in for World in any SPMD test — same run() contract, adversarial
/// timing, and (with structural events) typed RankFailure errors instead
/// of hangs. Wrap an existing World instead with World::set_fault_plan().
class FaultyWorld {
 public:
  FaultyWorld(int size, FaultSpec spec)
      : FaultyWorld(size, Topology::flat(size), std::move(spec)) {}
  FaultyWorld(int size, Topology topo, FaultSpec spec)
      : plan_(make_fault_plan(std::move(spec), size)), world_(size, topo) {
    world_.set_fault_plan(plan_);
  }

  [[nodiscard]] int size() const { return world_.size(); }
  [[nodiscard]] const FaultPlan& plan() const { return *plan_; }

  void run(const std::function<void(Communicator&)>& fn) { world_.run(fn); }

 private:
  std::shared_ptr<const FaultPlan> plan_;
  World world_;
};

}  // namespace dchag::comm
