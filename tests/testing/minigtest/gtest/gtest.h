// minigtest: a header-only stand-in for the subset of GoogleTest this repo
// uses, so the test suite builds on machines without GTest installed.
//
// Supported surface: TEST / TEST_P, TestWithParam<T> + GetParam(),
// INSTANTIATE_TEST_SUITE_P with ::testing::Values and a name generator,
// EXPECT_/ASSERT_ {EQ,NE,LT,LE,GT,GE,TRUE,FALSE,NEAR,THROW,FLOAT_EQ,
// DOUBLE_EQ,STREQ} with `<< message` streaming, and ::testing::TempDir().
// ASSERT_* aborts the current test by throwing internal::FatalFailure.
//
// The real GoogleTest is preferred when available; CMake selects this
// harness only when GTest is missing or -DDCHAG_FORCE_MINIGTEST=ON.
#pragma once

#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace testing {

class Test {
 public:
  virtual ~Test() = default;
  virtual void TestBody() = 0;
};

/// Per-parameter metadata handed to INSTANTIATE_TEST_SUITE_P name
/// generators.
template <typename T>
struct TestParamInfo {
  T param;
  std::size_t index = 0;
};

/// Directory for test scratch files, with a trailing separator.
inline std::string TempDir() { return "/tmp/"; }

namespace internal {

/// Thrown by ASSERT_* to abandon the current test body.
struct FatalFailure {};

struct RegisteredTest {
  std::string full_name;                // "Suite.Name" as printed.
  std::function<Test*()> factory;
  std::function<void()> prepare;        // Sets the current param, if any.
};

inline std::vector<RegisteredTest>& registry() {
  static std::vector<RegisteredTest> tests;
  return tests;
}

inline bool& current_test_failed() {
  static bool failed = false;
  return failed;
}

/// Best-effort value printer: operator<<, then member to_string(), then a
/// placeholder. Keeps failure output useful without requiring printers.
template <typename T>
void PrintValue(std::ostream& os, const T& v) {
  if constexpr (requires { os << v; }) {
    os << v;
  } else if constexpr (requires { v.to_string(); }) {
    os << v.to_string();
  } else {
    os << "<unprintable>";
  }
}

/// Accumulates the streamed failure message; reports on destruction. The
/// destructor throws FatalFailure for ASSERT_* macros, which is safe here
/// because it only runs at the end of a full expression.
class FailureReporter {
 public:
  FailureReporter(const char* file, int line, bool fatal)
      : file_(file), line_(line), fatal_(fatal) {}

  template <typename T>
  FailureReporter& operator<<(const T& v) {
    PrintValue(stream_, v);
    return *this;
  }

  ~FailureReporter() noexcept(false) {
    std::fprintf(stderr, "%s:%d: Failure\n%s\n", file_, line_,
                 stream_.str().c_str());
    current_test_failed() = true;
    if (fatal_) throw FatalFailure{};
  }

 private:
  const char* file_;
  int line_;
  bool fatal_;
  std::ostringstream stream_;
};

template <typename A, typename B>
std::string FormatComparison(const char* op, const char* a_expr,
                             const char* b_expr, const A& a, const B& b) {
  std::ostringstream os;
  os << "Expected: (" << a_expr << ") " << op << " (" << b_expr
     << "), actual: ";
  PrintValue(os, a);
  os << " vs ";
  PrintValue(os, b);
  return os.str();
}

struct CheckResult {
  bool ok = true;
  std::string msg;
  explicit operator bool() const { return ok; }
};

/// Both operands arrive as function arguments, so temporaries in the
/// macro's expressions stay alive for the comparison AND the formatting
/// (binding them to locals inside a macro would dangle for accessors that
/// return references into temporaries, e.g. Variable::shape()).
template <typename A, typename B, typename Op>
CheckResult Compare(const char* op_name, const char* a_expr,
                    const char* b_expr, const A& a, const B& b, Op op) {
  if (op(a, b)) return {};
  return {false, FormatComparison(op_name, a_expr, b_expr, a, b)};
}

template <typename A, typename B, typename Tol>
CheckResult CompareNear(const char* a_expr, const char* b_expr, const A& a,
                        const B& b, Tol tol) {
  if (std::abs(static_cast<double>(a) - static_cast<double>(b)) <=
      static_cast<double>(tol))
    return {};
  return {false, FormatComparison("~=", a_expr, b_expr, a, b)};
}

/// FLOAT_EQ/DOUBLE_EQ: tolerance-based approximation of gtest's 4-ULP
/// rule. A function (not a macro-side tolerance expression) so each
/// operand is evaluated exactly once, matching the GoogleTest contract.
template <typename A, typename B>
CheckResult CompareAlmostEq(const char* a_expr, const char* b_expr,
                            const A& a, const B& b, double rel) {
  const double da = static_cast<double>(a);
  const double db = static_cast<double>(b);
  if (std::abs(da - db) <= rel * (1.0 + std::abs(da))) return {};
  return {false, FormatComparison("~=", a_expr, b_expr, a, b)};
}

// ---------------------------------------------------------------------------
// Parameterized-test machinery
// ---------------------------------------------------------------------------

/// TEST_P bodies registered for a fixture, pending instantiation.
template <typename Fixture>
struct ParamSuite {
  struct Entry {
    const char* test_name;
    std::function<Test*()> factory;
  };
  static std::vector<Entry>& entries() {
    static std::vector<Entry> list;
    return list;
  }
};

template <typename Fixture>
int RegisterParamTest(const char* test_name,
                      std::function<Test*()> factory) {
  ParamSuite<Fixture>::entries().push_back({test_name, std::move(factory)});
  return 0;
}

template <typename Fixture, typename Generator, typename NameGen>
int InstantiateParamSuite(const char* prefix, const char* fixture_name,
                          const Generator& params, NameGen name_gen) {
  std::size_t index = 0;
  for (const auto& param : params) {
    TestParamInfo<typename Fixture::ParamType> info{param, index};
    const std::string param_name = name_gen(info);
    for (const auto& entry : ParamSuite<Fixture>::entries()) {
      registry().push_back(
          {std::string(prefix) + "/" + fixture_name + "." + entry.test_name +
               "/" + param_name,
           entry.factory,
           [param] { Fixture::current_param() = param; }});
    }
    ++index;
  }
  return 0;
}

template <typename Fixture, typename Generator>
int InstantiateParamSuite(const char* prefix, const char* fixture_name,
                          const Generator& params) {
  return InstantiateParamSuite<Fixture>(
      prefix, fixture_name, params,
      [](const TestParamInfo<typename Fixture::ParamType>& info) {
        return std::to_string(info.index);
      });
}

inline int RegisterTest(const char* suite, const char* name,
                        std::function<Test*()> factory) {
  registry().push_back({std::string(suite) + "." + name, std::move(factory),
                        [] {}});
  return 0;
}

}  // namespace internal

template <typename T>
class TestWithParam : public Test {
 public:
  using ParamType = T;
  static T& current_param() {
    static T param{};
    return param;
  }
  static const T& GetParam() { return current_param(); }
};

/// Homogeneous replacement for ::testing::Values — every argument is
/// converted to the common type and returned as a vector.
template <typename... Ts>
auto Values(Ts&&... vs) {
  using T = std::common_type_t<std::decay_t<Ts>...>;
  return std::vector<T>{static_cast<T>(std::forward<Ts>(vs))...};
}

}  // namespace testing

int RUN_ALL_TESTS();

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

#define MG_CONCAT_(a, b) a##b
#define MG_CONCAT(a, b) MG_CONCAT_(a, b)

#define TEST(Suite, Name)                                                     \
  class MG_CONCAT(Suite##_##Name, _Test) : public ::testing::Test {           \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  static const int MG_CONCAT(mg_reg_##Suite##_##Name, __LINE__) =             \
      ::testing::internal::RegisterTest(#Suite, #Name, [] {                   \
        return static_cast<::testing::Test*>(                                 \
            new MG_CONCAT(Suite##_##Name, _Test)());                          \
      });                                                                     \
  void MG_CONCAT(Suite##_##Name, _Test)::TestBody()

#define TEST_P(Fixture, Name)                                                 \
  class MG_CONCAT(Fixture##_##Name, _PTest) : public Fixture {                \
   public:                                                                    \
    void TestBody() override;                                                 \
  };                                                                          \
  static const int MG_CONCAT(mg_regp_##Fixture##_##Name, __LINE__) =          \
      ::testing::internal::RegisterParamTest<Fixture>(#Name, [] {             \
        return static_cast<::testing::Test*>(                                 \
            new MG_CONCAT(Fixture##_##Name, _PTest)());                       \
      });                                                                     \
  void MG_CONCAT(Fixture##_##Name, _PTest)::TestBody()

#define INSTANTIATE_TEST_SUITE_P(Prefix, Fixture, ...)                        \
  static const int MG_CONCAT(mg_inst_##Prefix##_##Fixture, __LINE__) =        \
      ::testing::internal::InstantiateParamSuite<Fixture>(#Prefix, #Fixture,  \
                                                          __VA_ARGS__)

// Failure reporting: the else-branch object swallows `<< message` streams
// and registers the failure (throwing for fatal macros) at end of
// statement.
#define MG_CHECK_IMPL(ok, fatal, default_msg)                                 \
  if (ok) {                                                                   \
  } else /* NOLINT */                                                         \
    ::testing::internal::FailureReporter(__FILE__, __LINE__, fatal)           \
        << default_msg << " "

#define MG_CMP(a, b, op, fatal)                                              \
  if (auto mg_result = ::testing::internal::Compare(                         \
          #op, #a, #b, (a), (b),                                             \
          [](const auto& x, const auto& y) {                                 \
            return static_cast<bool>(x op y);                                \
          });                                                                \
      mg_result) {                                                           \
  } else /* NOLINT */                                                        \
    ::testing::internal::FailureReporter(__FILE__, __LINE__, fatal)          \
        << mg_result.msg << " "

#define EXPECT_EQ(a, b) MG_CMP(a, b, ==, false)
#define EXPECT_NE(a, b) MG_CMP(a, b, !=, false)
#define EXPECT_LT(a, b) MG_CMP(a, b, <, false)
#define EXPECT_LE(a, b) MG_CMP(a, b, <=, false)
#define EXPECT_GT(a, b) MG_CMP(a, b, >, false)
#define EXPECT_GE(a, b) MG_CMP(a, b, >=, false)
#define ASSERT_EQ(a, b) MG_CMP(a, b, ==, true)
#define ASSERT_NE(a, b) MG_CMP(a, b, !=, true)
#define ASSERT_LT(a, b) MG_CMP(a, b, <, true)
#define ASSERT_LE(a, b) MG_CMP(a, b, <=, true)
#define ASSERT_GT(a, b) MG_CMP(a, b, >, true)
#define ASSERT_GE(a, b) MG_CMP(a, b, >=, true)

#define EXPECT_TRUE(c) \
  MG_CHECK_IMPL(static_cast<bool>(c), false, "Expected true: " #c)
#define EXPECT_FALSE(c) \
  MG_CHECK_IMPL(!static_cast<bool>(c), false, "Expected false: " #c)
#define ASSERT_TRUE(c) \
  MG_CHECK_IMPL(static_cast<bool>(c), true, "Expected true: " #c)
#define ASSERT_FALSE(c) \
  MG_CHECK_IMPL(!static_cast<bool>(c), true, "Expected false: " #c)

#define MG_NEAR(a, b, tol, fatal)                                            \
  if (auto mg_result =                                                       \
          ::testing::internal::CompareNear(#a, #b, (a), (b), (tol));         \
      mg_result) {                                                           \
  } else /* NOLINT */                                                        \
    ::testing::internal::FailureReporter(__FILE__, __LINE__, fatal)          \
        << mg_result.msg << " "

#define EXPECT_NEAR(a, b, tol) MG_NEAR(a, b, tol, false)
#define ASSERT_NEAR(a, b, tol) MG_NEAR(a, b, tol, true)

// Unconditional failures, streamable like the conditional forms:
// ADD_FAILURE() records and continues, FAIL() aborts the test.
#define ADD_FAILURE() \
  ::testing::internal::FailureReporter(__FILE__, __LINE__, false) << "Failed "
#define FAIL() \
  ::testing::internal::FailureReporter(__FILE__, __LINE__, true) << "Failed "
#define MG_ALMOST_EQ(a, b, rel, fatal)                                       \
  if (auto mg_result =                                                       \
          ::testing::internal::CompareAlmostEq(#a, #b, (a), (b), (rel));     \
      mg_result) {                                                           \
  } else /* NOLINT */                                                        \
    ::testing::internal::FailureReporter(__FILE__, __LINE__, fatal)          \
        << mg_result.msg << " "

#define EXPECT_FLOAT_EQ(a, b) MG_ALMOST_EQ(a, b, 4e-7, false)
#define EXPECT_DOUBLE_EQ(a, b) MG_ALMOST_EQ(a, b, 4e-16, false)
#define EXPECT_STREQ(a, b) \
  MG_CHECK_IMPL(std::strcmp((a), (b)) == 0, false, \
                "Expected equal C-strings: " #a " vs " #b)

#define MG_THROW(stmt, ex, fatal)                                            \
  MG_CHECK_IMPL(                                                             \
      [&] {                                                                  \
        try {                                                                \
          stmt;                                                              \
        } catch (const ex&) {                                                \
          return true;                                                       \
        } catch (...) {                                                      \
          return false;                                                      \
        }                                                                    \
        return false;                                                        \
      }(),                                                                   \
      fatal, "Expected " #stmt " to throw " #ex)

#define EXPECT_THROW(stmt, ex) MG_THROW(stmt, ex, false)
#define ASSERT_THROW(stmt, ex) MG_THROW(stmt, ex, true)
