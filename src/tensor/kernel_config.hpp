// Runtime-dispatched kernel backend selection. Every hot tensor kernel
// (ops.cpp) consults kernel_config() and picks one of three
// implementations:
//
//   kNaive    — the original scalar triple-loop kernels. Kept forever as
//               the bit-exactness oracle for parity tests.
//   kBlocked  — cache-blocked single-threaded kernels (MC/KC/NC tiled
//               matmul with a packed micro-kernel; gemm.cpp).
//   kParallel — kBlocked plus ThreadPool::parallel_for fan-out. Produces
//               bit-identical results to kBlocked at any thread count.
//
// The selection itself lives in the unified runtime::Context
// (runtime/context.hpp): KernelConfig/KernelBackend are aliases of the
// runtime types, kernel_config() reads the calling thread's effective
// context (innermost runtime::Scope, else the process default, which
// Context::from_env() initialises from DCHAG_KERNEL / DCHAG_THREADS),
// and the pre-Context KernelScope / set_kernel_config surface survives
// only as deprecated shims behind DCHAG_DEPRECATED_CONFIG.
#pragma once

#include <string>

#include "runtime/context.hpp"
#include "tensor/shape.hpp"

namespace dchag::tensor {

using KernelBackend = runtime::KernelBackend;
using KernelConfig = runtime::KernelConfig;

// parse_backend / to_string kept reachable under their historical names.
using runtime::parse_backend;
using runtime::to_string;

/// Effective config for the calling thread — the kernels field of the
/// effective runtime::Context — degraded to kNaive (one-time stderr
/// warning) when this CPU lacks the SIMD level the blocked kernels were
/// compiled for.
[[nodiscard]] KernelConfig kernel_config();

/// False when gemm.cpp was compiled with SIMD flags this CPU lacks.
/// Every blocked/parallel request then degrades to kNaive at dispatch —
/// never a fault, never an exception, so exotic hosts still run.
[[nodiscard]] bool blocked_kernels_supported();

#ifdef DCHAG_DEPRECATED_CONFIG

/// Replaces the kernels field of the process-default runtime::Context.
DCHAG_DEPRECATED_CONFIG_API(
    "use runtime::Context::set_process_default (or a runtime::Scope)")
void set_kernel_config(KernelConfig cfg);

/// Pre-Context thread-local override. Thin shim over runtime::Scope with
/// a kernels-only patch: nesting, worker propagation, and precedence are
/// the runtime stack's.
class DCHAG_DEPRECATED_CONFIG_API(
    "use runtime::Scope with ContextPatch::with_kernels") KernelScope {
 public:
  explicit KernelScope(KernelConfig cfg)
      : scope_(runtime::ContextPatch::with_kernels(cfg)) {}
  KernelScope(const KernelScope&) = delete;
  KernelScope& operator=(const KernelScope&) = delete;

 private:
  runtime::Scope scope_;
};

#endif  // DCHAG_DEPRECATED_CONFIG

}  // namespace dchag::tensor
